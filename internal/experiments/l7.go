package experiments

import (
	"fmt"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/netsim"
	"inbandlb/internal/server"
	"inbandlb/internal/stats"
	"inbandlb/internal/tcpsim"
	"inbandlb/internal/testbed"
)

// AblationL7 (ABL-L7) quantifies layer-7 key-affinity routing, the other
// routing granularity the paper names ("an LB may use either a request's
// layer-4 or layer-7 identifiers"). Servers hold an LRU hot-key cache that
// covers only part of the keyspace. Layer-4 routing sprays each key across
// all servers, so every server's cache churns over the whole keyspace;
// layer-7 routing pins each key to one server, effectively multiplying
// cache capacity by the pool size.
func AblationL7(seed int64, duration time.Duration) *Result {
	res := newResult("abl-l7")
	res.Header = []string{"routing", "hit_rate_pct", "p50_us", "p95_us", "responses"}
	if duration <= 0 {
		duration = 4 * time.Second
	}
	const (
		servers = 4
		keys    = 8000
		// Per-server cache of 1/4 of the keyspace: under key-affinity
		// routing the pool's combined caches cover every key exactly once
		// (each server's shard fits); under flow-hash routing every server
		// sees the whole keyspace and can only hold a quarter of it.
		cacheSize = keys / servers
	)
	for _, mode := range []string{"l4-flow-hash", "l7-key-hash"} {
		pol, err := control.NewMaglevStatic(serverNames(servers), 4093)
		if err != nil {
			res.addNote("setup failed: %v", err)
			return res
		}
		serverCfgs := make([]server.Config, servers)
		for i := range serverCfgs {
			serverCfgs[i] = server.Config{
				Name:       fmt.Sprintf("server-%d", i),
				Workers:    8,
				CacheSize:  cacheSize,
				HitService: server.Deterministic(20 * time.Microsecond),
				// Miss path: fetch from backing store.
				Service: server.Deterministic(600 * time.Microsecond),
			}
		}
		cluster, err := testbed.NewCluster(testbed.ClusterConfig{
			Seed:    seed,
			Policy:  pol,
			Servers: serverCfgs,
			L7:      mode == "l7-key-hash",
			Workload: tcpsim.RequestConfig{
				Connections: 16, Pipeline: 1, RequestsPerConn: 200,
				ReopenDelay: 500 * time.Microsecond,
				ThinkTime:   50 * time.Microsecond, ThinkJitter: 50 * time.Microsecond,
				GetFraction: 1, // read-heavy cache workload
				// Uniform keys isolate the routing effect: with skewed
				// popularity an LRU holds the hot set under any routing.
				Keys: keys,
			},
		})
		if err != nil {
			res.addNote("setup failed: %v", err)
			return res
		}
		hist := stats.NewDefaultHistogram()
		cluster.Client.OnResponse = func(now time.Duration, op netsim.Op, lat time.Duration) {
			if now > duration/4 { // skip cold-cache warmup
				hist.Record(lat)
			}
		}
		cluster.Run(duration)

		var hits, misses uint64
		for _, srv := range cluster.Servers {
			st := srv.Stats()
			hits += st.Hits
			misses += st.Misses
		}
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		res.addRow(mode, fmt.Sprintf("%.1f", hitRate),
			usStr(hist.Quantile(0.50)), usStr(hist.Quantile(0.95)),
			fmt.Sprintf("%d", hist.Count()))
		key := map[string]string{"l4-flow-hash": "l4", "l7-key-hash": "l7"}[mode]
		res.Metrics["hit_rate_pct_"+key] = hitRate
		res.Metrics["p50_us_"+key] = float64(hist.Quantile(0.50)) / 1e3
		res.Metrics["p95_us_"+key] = float64(hist.Quantile(0.95)) / 1e3
	}
	res.addNote("key-affinity routing multiplies effective cache capacity by the pool size; flow-hash routing duplicates the working set on every server")
	return res
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Short-duration configs keep these integration tests fast while still
// crossing many estimator epochs and the injection event.
func shortFig2() Fig2Config {
	return Fig2Config{Seed: 11, Duration: 2 * time.Second, StepAt: time.Second}
}

func shortFig3() Fig3Config {
	return Fig3Config{Seed: 11, Duration: 4 * time.Second, InjectAt: 2 * time.Second}
}

func TestFig2aShape(t *testing.T) {
	res := Fig2a(shortFig2())

	refPre := res.Metrics["ref_pre_count"] // ~one sample per true RTT batch
	lowPre := res.Metrics["low_delta_pre_count"]
	highPre := res.Metrics["high_delta_pre_count"]
	if refPre == 0 || res.Metrics["truth_pre_count"] == 0 {
		t.Fatal("no ground truth")
	}
	// The reference δ itself must track the truth.
	refErr := (res.Metrics["ref_pre_median_us"] - res.Metrics["truth_pre_median_us"]) / res.Metrics["truth_pre_median_us"]
	if refErr < -0.25 || refErr > 0.25 {
		t.Errorf("reference δ median %vµs far from truth %vµs",
			res.Metrics["ref_pre_median_us"], res.Metrics["truth_pre_median_us"])
	}
	// Claim 1: too-low δ produces far more samples than true RTT batches,
	// with a low median (the horizontal band in Fig. 2a).
	if lowPre < 2*refPre {
		t.Errorf("low δ samples = %v, true batches = %v; expected flooding", lowPre, refPre)
	}
	if res.Metrics["low_delta_pre_median_us"] >= res.Metrics["truth_pre_median_us"]/2 {
		t.Errorf("low δ median %vµs not far below truth %vµs",
			res.Metrics["low_delta_pre_median_us"], res.Metrics["truth_pre_median_us"])
	}
	// Claim 2: too-high δ produces far fewer samples than true batches —
	// but not zero: client hiccups yield "a small number of erroneously
	// large outputs" (paper, Fig. 2a discussion).
	if highPre > refPre/10 {
		t.Errorf("high δ samples = %v vs %v true batches; expected starvation", highPre, refPre)
	}
	if highPre == 0 {
		t.Error("high δ produced no samples at all; hiccups should yield sparse too-large outputs")
	}
	if len(res.Series) != 3 {
		t.Errorf("series = %d, want 3 (truth + 2 estimators)", len(res.Series))
	}
}

func TestFig2bShape(t *testing.T) {
	res := Fig2b(shortFig2())
	// Claim: the ensemble's median tracks ground truth within 25% on both
	// sides of the RTT step.
	for _, phase := range []string{"pre", "post"} {
		est := res.Metrics[phase+"_median_us"]
		truth := res.Metrics["truth_"+phase+"_median_us"]
		if truth == 0 {
			t.Fatalf("no %s-step truth", phase)
		}
		err := (est - truth) / truth
		if err < 0 {
			err = -err
		}
		if err > 0.25 {
			t.Errorf("%s-step: ensemble median %vµs vs truth %vµs (err %.1f%%)",
				phase, est, truth, 100*err)
		}
	}
	if _, ok := res.Metrics["adaptation_lag_ms"]; !ok {
		t.Error("estimator did not re-converge after the step")
	}
}

func TestFig3Shape(t *testing.T) {
	res := Fig3(shortFig3())
	mPre := res.Metrics["maglev_pre_p95_ms"]
	mPost := res.Metrics["maglev_post_p95_ms"]
	aPre := res.Metrics["aware_pre_p95_ms"]
	aPost := res.Metrics["aware_post_p95_ms"]
	if mPre == 0 || aPre == 0 {
		t.Fatalf("missing baselines: maglev %v, aware %v", mPre, aPre)
	}
	// Claim 1: static Maglev's p95 inflates by roughly the injected 1 ms.
	if mPost < mPre+0.7 {
		t.Errorf("maglev p95 %.3f -> %.3f ms; expected ~+1ms inflation", mPre, mPost)
	}
	// Claim 2: the latency-aware controller ends up clearly better than
	// the static baseline after injection.
	if aPost > mPost*0.75 {
		t.Errorf("latency-aware post p95 %.3f ms not clearly better than maglev %.3f ms", aPost, mPost)
	}
	// Claim 3: the controller reacted in milliseconds.
	reaction, ok := res.Metrics["reaction_ms"]
	if !ok {
		t.Fatal("controller never shifted after injection")
	}
	if reaction > 500 {
		t.Errorf("reaction = %.1f ms; paper claims milliseconds", reaction)
	}
}

func TestResultRendering(t *testing.T) {
	res := Fig2a(Fig2Config{Seed: 1, Duration: 500 * time.Millisecond, StepAt: 250 * time.Millisecond})
	var buf bytes.Buffer
	if err := res.Report(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2a", "series", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "time_s,series,value") {
		t.Error("CSV header missing")
	}
}

func TestFig3Determinism(t *testing.T) {
	a := Fig3(Fig3Config{Seed: 3, Duration: time.Second, InjectAt: 500 * time.Millisecond})
	b := Fig3(Fig3Config{Seed: 3, Duration: time.Second, InjectAt: 500 * time.Millisecond})
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs across identical runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

package experiments

import (
	"fmt"
	"time"
)

// AblationControllers (ABL-CTRL, open question 4) compares the paper's
// simple α-shift controller against the multiplicative-weights
// Proportional controller on the Fig. 3 scenario. Both must absorb the
// injected delay; the interesting differences are reaction time and
// steady-state oscillation (table updates after recovery).
func AblationControllers(seed int64, duration time.Duration) *Result {
	res := newResult("abl-controllers")
	res.Header = []string{"controller", "p95_pre_ms", "p95_post_ms", "reaction_ms", "updates_total", "updates_steady"}
	if duration <= 0 {
		duration = 4 * time.Second
	}
	cfg := Fig3Config{Seed: seed, Duration: duration, InjectAt: duration / 2}
	cfg.applyDefaults()
	for _, name := range []string{"maglev", "latency-aware", "proportional"} {
		run, err := runFig3Leg(cfg, name)
		if err != nil {
			res.addNote("%s failed: %v", name, err)
			continue
		}
		reaction := "n/a"
		if run.reaction >= 0 {
			reaction = msStr(run.reaction)
		}
		res.addRow(name, msStr(run.preP95), msStr(run.postP95), reaction,
			fmt.Sprintf("%d", run.shifts), fmt.Sprintf("%d", run.shiftsSteady))
		res.Metrics["post_p95_ms_"+name] = float64(run.postP95) / 1e6
		res.Metrics["updates_steady_"+name] = float64(run.shiftsSteady)
		if run.reaction >= 0 {
			res.Metrics["reaction_ms_"+name] = float64(run.reaction) / 1e6
		}
	}
	res.addNote("both feedback controllers absorb the injection within milliseconds; the α-shift needs hand-tuned hysteresis+cooldown to sit still afterwards, while the proportional controller's deadband gives quiet steady state without per-deployment tuning")
	return res
}

package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"inbandlb/internal/core"
	"inbandlb/internal/netsim"
	"inbandlb/internal/packet"
	"inbandlb/internal/stats"
	"inbandlb/internal/tcpsim"
)

// AblationSharedLadder (ABL-SHARED) evaluates the per-server SharedLadder
// extension against the paper's per-flow EnsembleTimeout on short-lived
// flows. Each flow lives ~7 ms — an order of magnitude less than the 64 ms
// epoch — so a per-flow estimator never escapes its initial rung, while the
// shared ladder pools sample counts across the server's flows and converges
// once, for everyone.
func AblationSharedLadder(seed int64, duration time.Duration) *Result {
	res := newResult("abl-shared-ladder")
	res.Header = []string{"estimator", "flows", "samples", "median_us", "truth_median_us", "err_pct"}
	if duration <= 0 {
		duration = 2 * time.Second
	}
	for _, variant := range []string{"per-flow", "shared"} {
		flows, samples, truths := runShortFlows(seed, duration, variant)
		med := stats.ExactQuantile(samples, 0.5)
		tmed := stats.ExactQuantile(truths, 0.5)
		errPct := 100 * relErr(med, tmed)
		res.addRow(variant, fmt.Sprintf("%d", flows), fmt.Sprintf("%d", len(samples)),
			usStr(med), usStr(tmed), fmt.Sprintf("%.1f", errPct))
		res.Metrics["err_pct_"+variant] = errPct
		res.Metrics["samples_"+variant] = float64(len(samples))
	}
	res.addNote("per-flow estimators cannot adapt within a flow shorter than one epoch; sharing the ladder per server fixes short-flow estimation")
	return res
}

// runShortFlows drives sequential short bulk flows (24 segments, window 4,
// 120µs serialization, 1ms RTT) through a tap running the chosen estimator
// variant. Returns flow count, all estimator samples, and all ground truth.
func runShortFlows(seed int64, duration time.Duration, variant string) (int, []time.Duration, []time.Duration) {
	sim := netsim.NewSim(seed)
	var samples, truths []time.Duration

	// Estimator state at the tap.
	var shared *core.SharedLadder
	perFlow := make(map[packet.FlowKey]*core.EnsembleTimeout)
	sharedFlows := make(map[packet.FlowKey]*core.LadderFlow)
	if variant == "shared" {
		shared = core.MustSharedLadder(core.EnsembleConfig{})
	}
	observe := func(key packet.FlowKey, now time.Duration) (time.Duration, bool) {
		if shared != nil {
			f, ok := sharedFlows[key]
			if !ok {
				f = shared.NewFlow()
				sharedFlows[key] = f
			}
			return shared.Observe(f, now)
		}
		e, ok := perFlow[key]
		if !ok {
			e = core.MustEnsemble(core.EnsembleConfig{})
			perFlow[key] = e
		}
		return e.Observe(now)
	}

	// Topology pieces shared by all flows. The current sender is swapped
	// per flow; ACKs route to it by flow key.
	senders := make(map[packet.FlowKey]*tcpsim.BulkSender)
	toClient := netsim.NewLink(sim, "sink->client", 500*time.Microsecond, 0,
		netsim.HandlerFunc(func(p *netsim.Packet) {
			if s, ok := senders[p.Flow]; ok {
				s.HandlePacket(p)
			}
		}))
	// ACK state is per connection: each flow gets its own sink, keyed by
	// flow (sequence numbers restart at zero on every new connection).
	sinks := make(map[packet.FlowKey]*tcpsim.AckSink)
	toSink := netsim.NewLink(sim, "tap->sink", 250*time.Microsecond, 0,
		netsim.HandlerFunc(func(p *netsim.Packet) {
			s, ok := sinks[p.Flow]
			if !ok {
				s = tcpsim.NewAckSink(sim, tcpsim.AckSinkConfig{}, toClient.Send)
				sinks[p.Flow] = s
			}
			s.HandlePacket(p)
		}))
	tap := netsim.HandlerFunc(func(p *netsim.Packet) {
		if s, ok := observe(p.Flow, sim.Now()); ok {
			samples = append(samples, s)
		}
		toSink.Send(p)
	})
	toTap := netsim.NewLink(sim, "client->tap", 250*time.Microsecond, 12.5e6, tap)

	flowCount := 0
	var startFlow func()
	startFlow = func() {
		if sim.Now() >= duration {
			return
		}
		key := packet.NewFlowKey(
			netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.1.0.1"),
			uint16(40000+flowCount%20000), 5001, packet.ProtoTCP)
		flowCount++
		sender := tcpsim.NewBulkSender(sim, tcpsim.BulkConfig{
			Flow: key, Window: 4, SegSize: 1500, MaxSegments: 24,
		}, toTap.Send)
		sender.GroundTruth = func(now, rtt time.Duration) { truths = append(truths, rtt) }
		senders[key] = sender
		sender.Start()
		// Next flow starts once this one is done (poll cheaply).
		var wait func()
		wait = func() {
			if sender.Done() {
				delete(senders, key)
				delete(sinks, key)
				sim.After(time.Millisecond, startFlow)
				return
			}
			sim.After(time.Millisecond, wait)
		}
		sim.After(time.Millisecond, wait)
	}
	sim.Schedule(0, startFlow)
	sim.RunUntil(duration)
	return flowCount, samples, truths
}

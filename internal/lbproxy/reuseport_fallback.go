//go:build !linux

package lbproxy

import "net"

// Non-Linux build: no portable SO_REUSEPORT constant in the stdlib, so
// multi-acceptor mode degrades to N accept loops sharing one listener —
// still parallel accept processing, just a shared accept queue.
func listenShards(addr string, n int) ([]net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return []net.Listener{lis}, nil
}

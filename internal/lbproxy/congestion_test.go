package lbproxy

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/memcache"
	"inbandlb/internal/packet"
)

// TestSampleTCPInfo exercises the raw getsockopt path on a real loopback
// socket: on Linux the read must succeed (unless a sandbox latched it
// broken) and report a sane cumulative counter; elsewhere it must be the
// structural no-op the fallback promises.
func TestSampleTCPInfo(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		c, err := lis.Accept()
		if err == nil {
			defer c.Close()
			buf := make([]byte, 16)
			_, _ = c.Read(buf)
		}
	}()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}

	total, rtt, ok := sampleTCPInfo(conn)
	if runtime.GOOS != "linux" {
		if ok {
			t.Fatal("sampleTCPInfo reported ok off Linux")
		}
		return
	}
	if !ok {
		if !tcpInfoAvailable() {
			t.Skip("TCP_INFO latched broken in this environment")
		}
		t.Fatal("sampleTCPInfo failed on a live Linux TCP conn")
	}
	// A fresh loopback conn has retransmitted nothing; the kernel may or
	// may not have an RTT estimate yet, so only sanity-bound it.
	if total != 0 {
		t.Errorf("fresh conn total_retrans = %d, want 0", total)
	}
	if rtt > 60e6 {
		t.Errorf("rtt = %dµs, implausible for loopback", rtt)
	}

	// A conn that is not a raw *net.TCPConn (chaos wrappers, pipes) must
	// decline rather than latch the process-wide flag.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, _, ok := sampleTCPInfo(c1); ok {
		t.Error("sampleTCPInfo accepted a net.Pipe conn")
	}
	if !tcpInfoAvailable() {
		t.Error("a non-TCP conn latched tcpInfoBroken")
	}
	// And a closed conn must fail the sample without latching either.
	dead, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()
	if _, _, ok := sampleTCPInfo(dead); ok {
		t.Error("sampleTCPInfo accepted a closed conn")
	}
	if !tcpInfoAvailable() {
		t.Error("a closed conn latched tcpInfoBroken")
	}
}

// TestCongChargeDelta pins the registry's delta accounting: the first
// sample primes the baseline (a pooled conn's prior history is never
// charged), later samples forward only the growth, and a flat counter
// forwards nothing.
func TestCongChargeDelta(t *testing.T) {
	p, err := New(Config{
		Backends:          []string{"b0", "b1"},
		Policy:            control.NewRoundRobin(2),
		CongestionSignals: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	e := &congEntry{backend: 1, hash: 42}
	p.congMu.Lock()
	p.congCharge(e, 7) // primes: 7 pre-registration retransmits are history
	p.congCharge(e, 7) // flat: nothing to forward
	p.congCharge(e, 12)
	p.congMu.Unlock()

	if got := p.congSamples.Load(); got != 3 {
		t.Errorf("congSamples = %d, want 3", got)
	}
	if got := p.congRetrans.Load(); got != 5 {
		t.Errorf("congRetrans = %d, want 5 (12-7, baseline never charged)", got)
	}
	st := p.Stats()
	if st.CongSamples != 3 || st.CongRetrans != 5 {
		t.Errorf("Stats cong counters = %d/%d, want 3/5", st.CongSamples, st.CongRetrans)
	}
}

// TestProxyBackendChurn is the accounting-identity-under-churn test: while
// clients pour through a Maglev proxy, one backend is passively ejected and
// restored, and another has its listener torn down and rebound mid-run. The
// invariants:
//
//   - Accepted == sum(PerBackend) + DialErrors + Dropped holds exactly
//     after Close — churn may fail or reroute connections but never loses
//     one from the ledger;
//   - Maglev's disruption bound: ejecting backend E remaps only E's hash
//     space — every flow routed to a surviving backend before the churn
//     routes identically during it, and the full pre-churn routing returns
//     bit-for-bit after restore.
func TestProxyBackendChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket churn test")
	}
	const nBackends = 4
	backends := make([]string, nBackends)
	servers := make([]*memcache.Server, nBackends)
	for i := range backends {
		servers[i], backends[i] = startBackend(t)
	}

	maglev, err := control.NewMaglevStatic([]string{"b0", "b1", "b2", "b3"}, 1021)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(Config{
		Backends:        backends,
		Policy:          maglev,
		ControlInterval: time.Millisecond,
		FlowTable:       core.FlowTableConfig{IdleTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	// Routing probe: a fixed population of synthetic flows, routed through
	// the controller exactly as accepted connections are. Maglev is
	// table-based, so RouteHashed is a pure snapshot read.
	const nFlows = 2000
	route := func() [nFlows]int {
		var out [nFlows]int
		for i := 0; i < nFlows; i++ {
			key := packet.FlowKey{Proto: packet.ProtoTCP, SrcPort: uint16(i + 1), DstPort: 9}
			key.SrcIP = [4]byte{10, 0, byte(i >> 8), byte(i)}
			b, _ := proxy.ctrl.RouteHashed(key.Hash(), key, proxy.now())
			out[i] = b
		}
		return out
	}
	before := route()

	// Client load across the whole churn window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cli, err := memcache.Dial(paddr, time.Second)
				if err != nil {
					continue // accept queue churn; the ledger still counts it
				}
				_ = cli.SetDeadline(time.Now().Add(2 * time.Second))
				_ = cli.Set(fmt.Sprintf("k-%d-%d", w, i), []byte("v"))
				_ = cli.Close()
			}
		}(w)
	}

	// Churn 1: passive ejection of backend 2. Only its flows may remap.
	const ejected = 2
	proxy.ctrl.SetEjected(ejected, true)
	time.Sleep(50 * time.Millisecond)
	during := route()
	moved := 0
	for i := range before {
		if before[i] == ejected {
			if during[i] == ejected {
				t.Fatalf("flow %d still routed to ejected backend", i)
			}
			moved++
			continue
		}
		if during[i] != before[i] {
			t.Fatalf("disruption bound violated: flow %d moved %d -> %d though backend %d is healthy",
				i, before[i], during[i], before[i])
		}
	}
	if moved == 0 {
		t.Fatal("no probe flows routed to the ejected backend; probe population too small")
	}

	// Churn 2: backend 1's listener goes down and comes back on the same
	// address — mid-run dial errors and failovers, then recovery.
	downAddr := backends[1]
	_ = servers[1].Close()
	time.Sleep(50 * time.Millisecond)
	restarted := memcache.NewServer()
	if err := restarted.Listen(downAddr); err != nil {
		t.Fatalf("rebind %s: %v", downAddr, err)
	}
	go func() { _ = restarted.Serve() }()
	t.Cleanup(func() { _ = restarted.Close() })

	// Restore: the pre-churn routing must return exactly.
	proxy.ctrl.SetEjected(ejected, false)
	time.Sleep(50 * time.Millisecond)
	after := route()
	if after != before {
		t.Fatal("routing did not return to the pre-churn table after restore")
	}

	close(stop)
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}

	st := proxy.Stats()
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("accepted %d != routed %d + dial errors %d + dropped %d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
	if st.Accepted == 0 || routed == 0 {
		t.Errorf("churn test relayed nothing: accepted=%d routed=%d", st.Accepted, routed)
	}
	if st.Active != 0 {
		t.Errorf("active = %d after drain, want 0", st.Active)
	}
}

// TestProxyCongestionSignalsStress turns the live TCP_INFO sampler loose
// under the race detector: a fast sampling cadence races congRegister /
// congFinal / congSweep against connection churn, pooled-conn recycling,
// and detector flapping. The assertions are structural — counters sane and
// the accounting identity exact — because loopback produces no real
// retransmissions to detect.
func TestProxyCongestionSignalsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket stress test")
	}
	const nBackends = 3
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}

	proxy, err := New(Config{
		Backends:        backends,
		Policy:          control.NewRoundRobin(nBackends),
		ControlInterval: time.Millisecond,
		// Pooling on: congFinal must race pool recycling too.
		PoolIdle:                 4,
		CongestionSignals:        true,
		CongestionSampleInterval: time.Millisecond,
		FlowTable:                core.FlowTableConfig{IdleTimeout: 100 * time.Millisecond},
		Detector: control.DetectorConfig{
			Enabled:           true,
			CongestionPerTick: 1,
			CongestionTicks:   3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	// Detector flapping in the background: ejection republishes snapshots
	// while the sampler attributes congestion to shifting backends.
	flapStop := make(chan struct{})
	var flapWg sync.WaitGroup
	flapWg.Add(1)
	go func() {
		defer flapWg.Done()
		for i := 0; ; i++ {
			select {
			case <-flapStop:
				return
			default:
			}
			b := i % nBackends
			proxy.ctrl.SetEjected(b, true)
			time.Sleep(5 * time.Millisecond)
			proxy.ctrl.SetEjected(b, false)
			time.Sleep(5 * time.Millisecond)
		}
	}()

	const (
		workers     = 16
		connsPerWkr = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < connsPerWkr; c++ {
				cli, err := memcache.Dial(paddr, 2*time.Second)
				if err != nil {
					continue
				}
				_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
				_ = cli.Set(fmt.Sprintf("k-%d-%d", w, c), []byte("congestion-stress"))
				_, _, _ = cli.Get(fmt.Sprintf("k-%d-%d", w, c))
				_ = cli.Close()
			}
		}(w)
	}
	wg.Wait()
	close(flapStop)
	flapWg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}

	st := proxy.Stats()
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("accepted %d != routed %d + dial errors %d + dropped %d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
	if runtime.GOOS == "linux" && tcpInfoAvailable() {
		if st.CongSamples == 0 {
			t.Error("no TCP_INFO samples on Linux with congestion signals enabled")
		}
	} else if st.CongSamples != 0 {
		t.Errorf("CongSamples = %d where TCP_INFO is unavailable", st.CongSamples)
	}
	// Loopback under test load does not retransmit; a nonzero count here
	// would mean delta accounting invented events.
	if st.CongRetrans > st.CongSamples {
		t.Errorf("CongRetrans %d > CongSamples %d: delta accounting implausible",
			st.CongRetrans, st.CongSamples)
	}
	// The registry must drain with the connections.
	proxy.congMu.Lock()
	left := len(proxy.cong)
	proxy.congMu.Unlock()
	if left != 0 {
		t.Errorf("%d entries left in the congestion registry after close", left)
	}
}

package lbproxy

import (
	"bufio"
	"errors"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/memcache"
	"inbandlb/internal/testbed"
)

// The netpoll suite exercises the event-driven dataplane end to end: every
// test here sets Config.Netpoll and skips where the platform has no epoll
// (the proxy then silently stays on the goroutine path, so there would be
// nothing to test).

// requireNetpoll skips the test unless the proxy actually brought up its
// poller shards.
func requireNetpoll(t *testing.T, p *Proxy) {
	t.Helper()
	if len(p.np) == 0 {
		t.Skip("netpoll dataplane unavailable on this platform")
	}
}

// TestProxyNetpollRelayMemcache proves the readiness-driven state machine
// relays real protocol traffic correctly in both transfer modes (splice and
// userspace copy), with the estimator observing every exchange.
func TestProxyNetpollRelayMemcache(t *testing.T) {
	for _, mode := range []struct {
		name   string
		splice bool
	}{{"splice", true}, {"copy", false}} {
		t.Run(mode.name, func(t *testing.T) {
			backend, baddr := startBackend(t)
			// Service time must clear the δ₁ = 64 µs ladder floor or
			// raw-loopback gaps merge into one batch and sampling depends
			// on scheduling jitter (EXPERIMENTS.md "ladder floor").
			backend.SetDelay(400 * time.Microsecond)
			proxy, paddr := startProxyCfg(t, Config{
				Backends: []string{baddr},
				Policy:   control.NewRoundRobin(1),
				Splice:   mode.splice,
				Netpoll:  true,
			})
			requireNetpoll(t, proxy)

			cli, err := memcache.Dial(paddr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
			big := strings.Repeat("v", 4096)
			for i := 0; i < 10; i++ {
				if err := cli.Set("k", []byte(big)); err != nil {
					t.Fatal(err)
				}
				v, ok, err := cli.Get("k")
				if err != nil || !ok || string(v) != big {
					t.Fatalf("get %d: ok=%v err=%v len=%d", i, ok, err, len(v))
				}
			}
			// Sample delivery is asynchronous to the relay; give it a
			// moment to land.
			var st Stats
			deadline := time.Now().Add(2 * time.Second)
			for {
				st = proxy.Stats()
				if st.Samples > 0 || time.Now().After(deadline) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if st.Samples == 0 {
				t.Error("no estimator samples on the netpoll path")
			}
			if mode.splice && spliceAvailable() && st.RelaySplices == 0 {
				t.Error("splice enabled and available, but no splice syscalls recorded")
			}
			if !mode.splice && st.RelaySplices != 0 {
				t.Errorf("copy mode recorded %d splice syscalls", st.RelaySplices)
			}
			if len(st.Netpoll) == 0 {
				t.Fatal("no netpoll shard stats while the event dataplane is on")
			}
			var wakeups uint64
			for _, sh := range st.Netpoll {
				wakeups += sh.Wakeups
			}
			if wakeups == 0 {
				t.Error("poller shards report zero wakeups after relaying traffic")
			}
			assertIdentity(t, st)
		})
	}
}

// TestProxyNetpollHalfClose pins CloseWrite propagation through the
// readiness state machine: a client that half-closes after its request must
// still receive the full response, then EOF.
func TestProxyNetpollHalfClose(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxyCfg(t, Config{
		Backends: []string{baddr},
		Policy:   control.NewRoundRobin(1),
		Netpoll:  true,
	})
	requireNetpoll(t, proxy)
	conn, err := net.DialTimeout("tcp", paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("set hk 0 0 2\r\nhi\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || strings.TrimSpace(resp) != "STORED" {
		t.Fatalf("response %q err=%v", resp, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) && err == nil {
		t.Error("expected EOF after half-closed exchange")
	}
}

// TestProxyNetpollGoroutineBudget is the scheduler-diet acceptance check at
// unit scale: N idle proxied connections must cost O(shards) goroutines, not
// O(2N), and closing the proxy must drain the poller shards along with
// everything else (the leak check extends to poller shutdown).
func TestProxyNetpollGoroutineBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket scale test")
	}
	const nConns = 400
	baseGoroutines := runtime.NumGoroutine()

	// Accept-only sinks: no per-connection backend goroutines, so the
	// process count isolates the proxy's share.
	backends, stopBackends, err := testbed.StartAcceptBackends(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stopBackends()

	proxy, err := New(Config{
		Backends:  backends,
		Policy:    control.NewRoundRobin(len(backends)),
		Acceptors: 4,
		Splice:    true,
		Netpoll:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireNetpoll(t, proxy)
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	defer proxy.Close()

	conns := make([]net.Conn, 0, nConns)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < nConns; i++ {
		c, err := net.DialTimeout("tcp", proxy.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
		if _, err := c.Write([]byte("ping\r\n")); err != nil {
			t.Fatalf("greeting %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active < nConns {
		time.Sleep(10 * time.Millisecond)
	}
	if a := proxy.Stats().Active; a != nConns {
		t.Fatalf("active = %d, want %d", a, nConns)
	}

	// Transient handle() goroutines exit right after handoff; give them a
	// moment, then the budget must hold: the goroutine path would sit at
	// base + 2N (two relay goroutines per connection).
	const budget = 64
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+budget {
		time.Sleep(20 * time.Millisecond)
	}
	goroutines := runtime.NumGoroutine()
	t.Logf("%d idle conns held by %d goroutines (base %d; goroutine path would be ~%d)",
		nConns, goroutines, baseGoroutines, baseGoroutines+2*nConns)
	if goroutines > baseGoroutines+budget {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine budget blown: %d for %d conns (base %d)\n%s",
			goroutines, nConns, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
	var reg int64
	st := proxy.Stats()
	for _, sh := range st.Netpoll {
		reg += sh.RegisteredFDs
	}
	if reg < 2*nConns {
		t.Errorf("registered fds = %d, want >= %d (both ends of every relay)", reg, 2*nConns)
	}

	// Poller-shutdown leak check: Close force-closes the fleet, finalizes
	// every parked relay, and must return the process to its baseline.
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+4 {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+4 {
		buf := make([]byte, 1<<16)
		t.Errorf("poller shutdown leaked goroutines: %d now vs %d at start\n%s",
			g, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
	st = proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after Close", st.Active)
	}
	if st.Accepted != nConns {
		t.Errorf("accepted = %d, want %d", st.Accepted, nConns)
	}
	assertIdentity(t, st)
	if st.Samples != st.SamplesDelivered+st.SamplesDropped || st.SamplesDropped != 0 {
		t.Errorf("estimator sample loss through poller shutdown: samples %d, delivered %d, dropped %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
}

// TestProxyNetpollEstimatorEquivalence is the measurement-preservation
// check the whole refactor hangs on, mirroring the splice-vs-copy test:
// one identical paced workload through the netpoll dataplane and through
// the goroutine dataplane must yield the same observed in-band latency
// relative to each run's own client-side ground truth — timestamping
// readiness events is the same measurement as timestamping blocking reads.
func TestProxyNetpollEstimatorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paced live-socket test")
	}
	const (
		serviceDelay = 8 * time.Millisecond
		exchanges    = 40
	)
	run := func(useNetpoll bool) (latMs, clientMs float64, st Stats) {
		addrs := make([]string, 2)
		for i := range addrs {
			echo := testbed.NewLiveEcho(serviceDelay)
			if err := echo.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			go func() { _ = echo.Serve() }()
			defer echo.Close()
			addrs[i] = echo.Addr().String()
		}
		la, err := control.NewLatencyAware(control.LatencyAwareConfig{
			Backends: addrs, Alpha: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy, paddr := startProxyCfg(t, Config{
			Backends: addrs,
			Policy:   la,
			Splice:   true,
			Netpoll:  useNetpoll,
		})
		if useNetpoll {
			requireNetpoll(t, proxy)
		}
		rtts, err := testbed.LiveExchange(paddr, exchanges, 64)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]time.Duration(nil), rtts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		clientMs = sorted[len(sorted)/2].Seconds() * 1e3
		time.Sleep(20 * time.Millisecond) // a couple of control ticks: merge samples
		snap := proxy.Snapshot()
		st = proxy.Stats()
		serving := -1
		for i, n := range st.PerBackend {
			if n > 0 {
				serving = i
			}
		}
		if serving < 0 || serving >= len(snap.LatenciesMs) {
			t.Fatalf("no serving backend: perBackend=%v latencies=%v", st.PerBackend, snap.LatenciesMs)
		}
		return snap.LatenciesMs[serving], clientMs, st
	}

	npMs, npClientMs, npStats := run(true)
	goMs, goClientMs, _ := run(false)
	t.Logf("in-band latency vs client ground truth: netpoll=%.2fms (client %.2fms), goroutine=%.2fms (client %.2fms), service delay %v",
		npMs, npClientMs, goMs, goClientMs, serviceDelay)
	if npStats.Samples == 0 {
		t.Fatal("netpoll run produced no estimator samples")
	}

	norm := func(name string, est, client float64) float64 {
		if client < serviceDelay.Seconds()*1e3*0.8 {
			t.Fatalf("%s: client median %.2fms below service delay — broken workload", name, client)
		}
		r := est / client
		if r < 0.5 || r > 2.0 {
			t.Errorf("%s: estimator %.2fms does not track client ground truth %.2fms (ratio %.2f)",
				name, est, client, r)
		}
		return r
	}
	nr := norm("netpoll", npMs, npClientMs)
	gr := norm("goroutine", goMs, goClientMs)
	if d := nr - gr; d < -0.5 || d > 0.5 {
		t.Errorf("dataplanes disagree about latency relative to ground truth: netpoll ratio %.2f, goroutine ratio %.2f", nr, gr)
	}
}

// TestProxyNetpollPooledConnReuse drives two sequential client sessions
// through the event dataplane and asserts the second rides the first one's
// recycled backend connection — the quiesce grace now lives on the timing
// wheel instead of a read deadline.
func TestProxyNetpollPooledConnReuse(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxyCfg(t, Config{
		Backends:    []string{baddr},
		Policy:      control.NewRoundRobin(1),
		Splice:      true,
		Netpoll:     true,
		PoolIdle:    2,
		PoolQuiesce: 5 * time.Millisecond,
	})
	requireNetpoll(t, proxy)

	exchange := func(key, val string) {
		cli, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
		if err := cli.Set(key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		v, ok, err := cli.Get(key)
		if err != nil || !ok || string(v) != val {
			t.Fatalf("get %q: ok=%v err=%v", key, ok, err)
		}
	}

	exchange("a", "1")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().PoolRecycled == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if proxy.Stats().PoolRecycled == 0 {
		t.Fatal("first session's backend conn never recycled")
	}
	exchange("b", "2")

	st := proxy.Stats()
	if st.PoolHits == 0 {
		t.Errorf("second session did not reuse the pooled conn: %+v", st)
	}
	assertIdentity(t, st)
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped {
		t.Errorf("sample identity broken: %d != %d + %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
}

// plantDeadPooledConn puts a real TCP connection into the pool for backend 0
// whose write side we have already shut down: the checkout probe sees a
// quiet, open socket (EAGAIN — healthy), but the first relay write fails
// with EPIPE. This is the netpoll revalidation trigger; the goroutine-path
// test uses a Write-failing wrapper instead, which the event dataplane
// would reject at handoff (no raw access).
func plantDeadPooledConn(t *testing.T, proxy *Proxy) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = lis.Close() })
	c, err := net.DialTimeout("tcp", lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if !proxy.pool.Put(0, 0, c, time.Time{}) {
		t.Fatal("could not plant pooled conn")
	}
}

// TestProxyNetpollPooledDeadBackend is the revalidation table on the event
// dataplane: a pooled connection that fails its first write must be
// accounted exactly like a failed dial — one redial to the same backend,
// then the existing failover path — with the Accepted identity intact in
// every outcome. The redial runs on a one-shot helper goroutine while the
// relay stays parked on its shard.
func TestProxyNetpollPooledDeadBackend(t *testing.T) {
	cases := []struct {
		name          string
		backends      []string // "live" → memcached, "dead" → refusing addr
		wantErr       bool
		wantDialErrs  uint64
		wantFailovers uint64
		wantBackend   int // backend that must serve the rescued exchange (-1 none)
	}{
		{
			name:     "redial same backend succeeds",
			backends: []string{"live"},
			wantErr:  false, wantDialErrs: 0, wantFailovers: 0, wantBackend: 0,
		},
		{
			name:     "backend down, failover rescues",
			backends: []string{"dead", "live"},
			wantErr:  false, wantDialErrs: 0, wantFailovers: 1, wantBackend: 1,
		},
		{
			name:     "all backends down, terminal dial error",
			backends: []string{"dead", "dead"},
			wantErr:  true, wantDialErrs: 1, wantFailovers: 0, wantBackend: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := make([]string, len(tc.backends))
			for i, kind := range tc.backends {
				if kind == "live" {
					_, addrs[i] = startBackend(t)
				} else {
					addrs[i] = deadAddr(t)
				}
			}
			proxy, paddr := startProxyCfg(t, Config{
				Backends: addrs,
				// RoundRobin picks backend 0 for the first connection.
				Policy:   control.NewRoundRobin(len(addrs)),
				Netpoll:  true,
				PoolIdle: 2,
			})
			requireNetpoll(t, proxy)
			plantDeadPooledConn(t, proxy)

			cli, err := memcache.Dial(paddr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
			setErr := cli.Set("k", []byte("v"))
			_ = cli.Close()
			if (setErr != nil) != tc.wantErr {
				t.Fatalf("set err = %v, wantErr = %v", setErr, tc.wantErr)
			}

			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
				time.Sleep(2 * time.Millisecond)
			}
			st := proxy.Stats()
			if st.PoolFirstWriteFails != 1 {
				t.Errorf("poolFirstWriteFails = %d, want 1", st.PoolFirstWriteFails)
			}
			if st.DialErrors != tc.wantDialErrs {
				t.Errorf("dialErrors = %d, want %d", st.DialErrors, tc.wantDialErrs)
			}
			if st.Failovers != tc.wantFailovers {
				t.Errorf("failovers = %d, want %d", st.Failovers, tc.wantFailovers)
			}
			if tc.wantBackend >= 0 && st.PerBackend[tc.wantBackend] != 1 {
				t.Errorf("perBackend = %v, want conn on backend %d", st.PerBackend, tc.wantBackend)
			}
			assertIdentity(t, st)
		})
	}
}

// TestProxyNetpollIdleTimeout pins the timing-wheel deadline path: a
// backend that swallows the request and never answers must be cut off by
// IdleTimeout — the response direction's wheel timer fires, the relay
// reports detector evidence, and both directions tear down.
func TestProxyNetpollIdleTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	proxy, paddr := startProxyCfg(t, Config{
		Backends:    []string{lis.Addr().String()},
		Policy:      control.NewRoundRobin(1),
		Netpoll:     true,
		IdleTimeout: 100 * time.Millisecond,
	})
	requireNetpoll(t, proxy)

	conn, err := net.DialTimeout("tcp", paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello?\r\n")); err != nil {
		t.Fatal(err)
	}
	// The proxy must cut us off shortly after the idle bound; a blocking
	// read with a generous deadline must end in EOF/reset, not expire.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("connection survived the idle timeout: err=%v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	st := proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after idle teardown", st.Active)
	}
	var fires uint64
	for _, sh := range st.Netpoll {
		fires += sh.TimerFires
	}
	if fires == 0 {
		t.Error("no wheel timer fires recorded for an idle-timeout teardown")
	}
	assertIdentity(t, st)
}

// TestProxyNetpollConcurrentClients is the race-mode stress: many clients
// hammering the full event-dataplane configuration — acceptor shards,
// splice, pooling — with the accounting identities checked after drain.
func TestProxyNetpollConcurrentClients(t *testing.T) {
	const nBackends = 2
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}
	proxy, paddr := startProxyCfg(t, Config{
		Backends:  backends,
		Policy:    control.NewRoundRobin(nBackends),
		Acceptors: 4,
		Splice:    true,
		Netpoll:   true,
		PoolIdle:  4,
	})
	requireNetpoll(t, proxy)

	const clients = 16
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			cli, err := memcache.Dial(paddr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
			for s := 0; s < 5; s++ {
				if err := cli.Set("mk", []byte("mv")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := proxy.Stats()
	if st.Accepted != clients {
		t.Errorf("accepted = %d, want %d", st.Accepted, clients)
	}
	assertIdentity(t, st)
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped || st.SamplesDropped != 0 {
		t.Errorf("sample identity: %d != %d + %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
}

//go:build !linux

package lbproxy

import "net"

// TCP_INFO is Linux-only; elsewhere congestion sampling is a structural
// no-op — connections register and deregister, but no sample ever fires,
// so the detector simply never sees transport evidence.

func tcpInfoAvailable() bool { return false }

func sampleTCPInfo(net.Conn) (totalRetrans, rttMicros uint32, ok bool) {
	return 0, 0, false
}

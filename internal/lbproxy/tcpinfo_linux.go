//go:build linux

package lbproxy

import (
	"net"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Live transport-distress sampling: the kernel already runs the congestion
// detector we built for the simulator — every retransmission it performs on
// a backend connection is the same in-band evidence the packet tracker
// mines from a simulated stream. TCP_INFO exposes the running total (and
// the smoothed RTT) per socket, so the proxy can read real congestion off
// its relay fds without touching payload bytes or adding any per-chunk
// work: one getsockopt per connection per sampling tick.
//
// Only two fields are needed, both at fixed offsets in struct tcp_info
// since Linux 2.6 (the struct only ever grows at the tail):
//
//	tcpi_rtt           u32 @ byte 68  (smoothed RTT, microseconds)
//	tcpi_total_retrans u32 @ byte 100 (cumulative retransmitted segments)
//
// so the buffer is parsed directly instead of mirroring the full struct.

const (
	// tcpInfoLen must cover through tcpi_total_retrans. Kernels return
	// their full (longer) struct; anything shorter is treated as unusable.
	tcpInfoLen = 104

	tcpInfoRTTOff     = 68
	tcpInfoRetransOff = 100
)

// tcpInfoBroken latches once TCP_INFO proves unusable in this process
// (seccomp filters, exotic socket types); every subsequent sample becomes a
// no-op without retrying the syscall — the same pattern as spliceBroken.
var tcpInfoBroken atomic.Bool

// tcpInfoAvailable reports whether sampling is worth attempting.
func tcpInfoAvailable() bool { return !tcpInfoBroken.Load() }

// sampleTCPInfo reads the cumulative retransmission count and smoothed RTT
// off one backend connection. ok is false when the connection is closed,
// is not a raw TCP socket (chaos wrappers, test pipes), or TCP_INFO is
// latched broken.
func sampleTCPInfo(c net.Conn) (totalRetrans, rttMicros uint32, ok bool) {
	if !tcpInfoAvailable() {
		return 0, 0, false
	}
	sc, isSC := c.(syscall.Conn)
	if !isSC {
		return 0, 0, false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return 0, 0, false
	}
	var buf [256]byte
	optlen := uint32(len(buf))
	var errno syscall.Errno
	cerr := raw.Control(func(fd uintptr) {
		_, _, errno = syscall.Syscall6(syscall.SYS_GETSOCKOPT, fd,
			uintptr(syscall.IPPROTO_TCP), uintptr(syscall.TCP_INFO),
			uintptr(unsafe.Pointer(&buf[0])), uintptr(unsafe.Pointer(&optlen)), 0)
	})
	if cerr != nil {
		return 0, 0, false // connection already closed
	}
	if errno != 0 {
		if errno == syscall.ENOPROTOOPT || errno == syscall.EINVAL || errno == syscall.ENOSYS {
			tcpInfoBroken.Store(true)
		}
		return 0, 0, false
	}
	if optlen < tcpInfoLen {
		// A kernel too old to report total_retrans: nothing to sample, ever.
		tcpInfoBroken.Store(true)
		return 0, 0, false
	}
	// The kernel writes native-endian into our buffer; read in place.
	totalRetrans = *(*uint32)(unsafe.Pointer(&buf[tcpInfoRetransOff]))
	rttMicros = *(*uint32)(unsafe.Pointer(&buf[tcpInfoRTTOff]))
	return totalRetrans, rttMicros, true
}

package lbproxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"inbandlb/internal/auditlog"
	"inbandlb/internal/control"
	"inbandlb/internal/memcache"
)

// validatePrometheusText is a strict checker for the Prometheus text
// exposition format (version 0.0.4): every sample line must parse, every
// sample's family must have a preceding # TYPE, and HELP/TYPE comments
// must be well-formed. Returns the set of family names seen.
func validatePrometheusText(t *testing.T, body string) map[string]string {
	t.Helper()
	var (
		metricName = `[a-zA-Z_:][a-zA-Z0-9_:]*`
		labelPair  = `[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"`
		value      = `(?:[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|NaN|[-+]Inf)`
		sampleRe   = regexp.MustCompile(`^(` + metricName + `)(?:\{(?:` + labelPair + `)(?:,` + labelPair + `)*\})? ` + value + `(?: [0-9]+)?$`)
		helpRe     = regexp.MustCompile(`^# HELP (` + metricName + `) .+$`)
		typeRe     = regexp.MustCompile(`^# TYPE (` + metricName + `) (counter|gauge|histogram|summary|untyped)$`)
	)
	types := make(map[string]string)
	samples := 0
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			mt := typeRe.FindStringSubmatch(line)
			if mt == nil {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if _, dup := types[mt[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, mt[1])
			}
			types[mt[1]] = mt[2]
		case strings.HasPrefix(line, "#"):
			// other comments are legal
		default:
			ms := sampleRe.FindStringSubmatch(line)
			if ms == nil {
				t.Errorf("line %d: unparseable sample: %q", i+1, line)
				continue
			}
			if _, ok := types[ms[1]]; !ok {
				t.Errorf("line %d: sample %s has no preceding # TYPE", i+1, ms[1])
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("exposition contained no samples")
	}
	return types
}

// startAuditedProxy runs a proxy with passive detection and an async audit
// log writing into buf, over two live backends (latency-aware needs a pool
// of at least two distinct servers).
func startAuditedProxy(t *testing.T, buf *bytes.Buffer) (*Proxy, string, *auditlog.Log) {
	t.Helper()
	_, b0 := startBackend(t)
	_, b1 := startBackend(t)
	backends := []string{b0, b1}
	alog, err := auditlog.NewLog(buf, auditlog.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends: backends, Alpha: 0.3, MinWeight: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Backends: backends,
		Policy:   pol,
		Detector: control.DetectorConfig{Enabled: true, FailureThreshold: 3},
		Audit:    alog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve() }()
	t.Cleanup(func() { _ = p.Close() })
	return p, p.Addr().String(), alog
}

// TestAdminMetricsValidPrometheus is the acceptance criterion: /metrics
// must emit well-formed Prometheus text exposition.
func TestAdminMetricsValidPrometheus(t *testing.T) {
	var logBuf bytes.Buffer
	p, paddr, _ := startAuditedProxy(t, &logBuf)

	// Push a little traffic so counters are non-zero.
	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	srv := httptest.NewServer(p.AdminHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	families := validatePrometheusText(t, body.String())

	for _, want := range []string{
		"lbproxy_accepted_total",
		"lbproxy_backend_connections_total",
		"lbproxy_backend_health_state",
		"lbproxy_backend_admission",
		"lbproxy_audit_written_total",
		"lbproxy_audit_sheds_total",
		"lbproxy_backend_weight",
	} {
		if _, ok := families[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if !strings.Contains(body.String(), "lbproxy_accepted_total 1") {
		t.Errorf("accepted counter not reflecting traffic:\n%s", body.String())
	}
	if !strings.Contains(body.String(), `state="healthy"`) {
		t.Error("backend health state missing")
	}
}

// TestAdminDecisionsTail: the /decisions endpoint serves the audit tail,
// including the initial snapshot publish and a manual ejection flip.
func TestAdminDecisionsTail(t *testing.T) {
	var logBuf bytes.Buffer
	p, _, alog := startAuditedProxy(t, &logBuf)

	p.ctrl.SetEjected(1, true)
	p.ctrl.SetEjected(1, false)

	// The async sink's writer goroutine mirrors records into the tail;
	// wait for it to catch up.
	deadline := time.Now().Add(2 * time.Second)
	for alog.Written() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(p.AdminHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/decisions?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Written   uint64 `json:"written"`
		Sheds     uint64 `json:"sheds"`
		Decisions []struct {
			Kind    string `json:"kind"`
			Cause   string `json:"cause"`
			Backend int32  `json:"backend"`
			To      string `json:"to"`
		} `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Decisions) == 0 {
		t.Fatal("no decisions in tail")
	}
	if doc.Decisions[0].Kind != "publish" {
		t.Errorf("first decision %q, want the initial publish", doc.Decisions[0].Kind)
	}
	var sawManual bool
	for _, d := range doc.Decisions {
		if d.Kind == "manual" && d.Backend == 1 && d.To == "ejected" {
			sawManual = true
		}
	}
	if !sawManual {
		t.Errorf("manual ejection not in tail: %+v", doc.Decisions)
	}

	if resp, err := http.Get(srv.URL + "/decisions?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bogus n got %d", resp.StatusCode)
		}
	}
}

// TestAdminDecisionsWithoutAuditLog: a proxy without an async audit sink
// answers 404, not a panic or an empty 200.
func TestAdminDecisionsWithoutAuditLog(t *testing.T) {
	_, baddr := startBackend(t)
	p, _ := startProxy(t, control.NewRoundRobin(1), baddr)
	srv := httptest.NewServer(p.AdminHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestAdminConfigReload: GET shows the live detector config; POST overlays
// only the named knobs, preserves the rest, and the reload lands in the
// audit log.
func TestAdminConfigReload(t *testing.T) {
	var logBuf bytes.Buffer
	p, _, alog := startAuditedProxy(t, &logBuf)

	srv := httptest.NewServer(p.AdminHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/config")
	if err != nil {
		t.Fatal(err)
	}
	var cfg map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cfg["enabled"] != true {
		t.Fatalf("GET /config: %v", cfg)
	}
	if cfg["failure_threshold"].(float64) != 3 {
		t.Errorf("failure_threshold = %v", cfg["failure_threshold"])
	}

	resp, err = http.Post(srv.URL+"/config", "application/json",
		strings.NewReader(`{"failure_threshold": 7, "backoff_initial_ms": 250}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /config: %d", resp.StatusCode)
	}
	if cfg["failure_threshold"].(float64) != 7 || cfg["backoff_initial_ms"].(float64) != 250 {
		t.Errorf("reload not applied: %v", cfg)
	}
	// Overlay semantics: untouched knobs keep their (defaulted) values.
	if cfg["outlier_ticks"].(float64) != 10 || cfg["enabled"] != true {
		t.Errorf("reload clobbered unnamed knobs: %v", cfg)
	}
	live, enabled := p.DetectorConfig()
	if !enabled || live.FailureThreshold != 7 || live.BackoffInitial != 250*time.Millisecond {
		t.Errorf("live config = %+v enabled=%v", live, enabled)
	}

	// The reload is itself an audited decision.
	deadline := time.Now().Add(2 * time.Second)
	var sawReload bool
	for time.Now().Before(deadline) && !sawReload {
		for _, rec := range alog.Tail(0) {
			if rec.Kind == auditlog.KindConfigReload {
				sawReload = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !sawReload {
		t.Error("config reload not recorded in the audit log")
	}

	// Malformed body: 400, config unchanged.
	resp, err = http.Post(srv.URL+"/config", "application/json", strings.NewReader(`{"failure`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed POST got %d", resp.StatusCode)
	}
	if live, _ := p.DetectorConfig(); live.FailureThreshold != 7 {
		t.Errorf("malformed POST changed config: %+v", live)
	}
}

// TestAdminAuditLogSealsOnClose: after the proxy shuts down and the log is
// closed, the on-disk bytes verify end to end — the production wiring
// produces the same tamper-evident artifact the incident tooling consumes.
func TestAdminAuditLogSealsOnClose(t *testing.T) {
	var logBuf bytes.Buffer
	p, paddr, alog := startAuditedProxy(t, &logBuf)

	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Set("k", []byte("v"))
	c.Close()

	_ = p.Close()
	if err := alog.Close(); err != nil {
		t.Fatalf("audit close: %v", err)
	}
	logged, err := auditlog.Verify(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("proxy audit log failed verification: %v", err)
	}
	if len(logged.Records) == 0 {
		t.Fatal("no records in proxy audit log")
	}
	if logged.Records[0].Kind != auditlog.KindPublish {
		t.Errorf("first record %v, want the initial publish", logged.Records[0].Kind)
	}
}

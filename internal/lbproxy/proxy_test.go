package lbproxy

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/memcache"
	"inbandlb/internal/packet"
)

// startBackend runs a memcached server on an ephemeral port.
func startBackend(t *testing.T) (*memcache.Server, string) {
	t.Helper()
	s := memcache.NewServer()
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s, s.Addr().String()
}

// startProxy runs a proxy over the given backends.
func startProxy(t *testing.T, pol control.Policy, backends ...string) (*Proxy, string) {
	t.Helper()
	p, err := New(Config{Backends: backends, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve() }()
	t.Cleanup(func() { _ = p.Close() })
	return p, p.Addr().String()
}

func TestProxyValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(Config{Policy: control.NewRoundRobin(2), Backends: []string{"x"}}); err == nil {
		t.Error("backend mismatch accepted")
	}
	if _, err := New(Config{
		Policy:    control.NewRoundRobin(1),
		Backends:  []string{"x"},
		FlowTable: core.FlowTableConfig{Ensemble: core.EnsembleConfig{Timeouts: []time.Duration{2, 1}}},
	}); err == nil {
		t.Error("bad flow table accepted")
	}
}

func TestProxyRelaysMemcacheTraffic(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxy(t, control.NewRoundRobin(1), baddr)

	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("through-proxy")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "through-proxy" {
		t.Fatalf("get through proxy: %q ok=%v err=%v", v, ok, err)
	}
	st := proxy.Stats()
	if st.Accepted != 1 || st.PerBackend[0] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxySpreadsConnections(t *testing.T) {
	_, b0 := startBackend(t)
	_, b1 := startBackend(t)
	proxy, paddr := startProxy(t, control.NewRoundRobin(2), b0, b1)

	for i := 0; i < 6; i++ {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		_ = c.Close()
	}
	// Wait for relays to wind down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	st := proxy.Stats()
	if st.PerBackend[0] != 3 || st.PerBackend[1] != 3 {
		t.Errorf("per-backend conns = %v, want [3 3]", st.PerBackend)
	}
}

func TestProxyDialErrorCounted(t *testing.T) {
	// Point at a dead backend: connections drop but the proxy survives.
	proxy, paddr := startProxy(t, control.NewRoundRobin(1), "127.0.0.1:1")
	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(500 * time.Millisecond))
	if err := c.Set("k", []byte("v")); err == nil {
		t.Error("set succeeded against dead backend")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().DialErrors == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if proxy.Stats().DialErrors == 0 {
		t.Error("dial error not counted")
	}
}

// TestProxyEndToEndFeedback is the live-socket version of Fig. 3 at test
// scale: two real memcached servers, one degraded via the admin delay
// command, a closed-loop client workload, and the latency-aware policy.
// The proxy must route new connections away from the slow server.
func TestProxyEndToEndFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	slow, slowAddr := startBackend(t)
	fast, fastAddr := startBackend(t)
	slow.SetDelay(8 * time.Millisecond)
	// The estimator's smallest rung is δ₁ = 64µs: response latencies below
	// it merge whole connections into one batch and over-estimate wildly
	// (see EXPERIMENTS.md, "ladder floor"). Raw loopback (~50µs) sits
	// under that floor, so give the fast server a realistic sub-millisecond
	// service time inside the ladder's operating range.
	fast.SetDelay(400 * time.Microsecond)

	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"slow", "fast"},
		Alpha:     0.10,
		TableSize: 1021,
		// Keep the drained server measurable (a 2% trickle starves it of
		// samples and staleness then flip-flops the decision), tolerate
		// scheduler-induced sample droughts, and require a clear gap —
		// loopback under parallel-test CPU contention is noisy.
		MinWeight:       0.10,
		Cooldown:        5 * time.Millisecond,
		HysteresisRatio: 1.5,
		Latency: core.ServerLatencyConfig{
			HalfLife:  25 * time.Millisecond,
			Staleness: 3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, paddr := startProxy(t, la, slowAddr, fastAddr)

	// Closed-loop workload: sequential connections, several requests each.
	// Drive traffic until the controller settles on the fast server (or a
	// generous deadline passes) — wall-clock timing under parallel-test
	// CPU contention is too noisy for a fixed-duration assertion.
	// Weights are read via Snapshot, which serializes with the sample
	// consumer; touching la directly here would race it.
	settled := func() bool {
		w := proxy.Snapshot().Weights
		return w[0] < w[1]
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_ = c.SetDeadline(time.Now().Add(2 * time.Second))
		for i := 0; i < 20; i++ {
			if err := c.Set("key", []byte("value")); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		_ = c.Close()
		// Require the settled state to persist across a few connections,
		// not just a momentary flip.
		if settled() {
			stable := true
			for i := 0; i < 5 && stable; i++ {
				c, err := memcache.Dial(paddr, time.Second)
				if err != nil {
					t.Fatal(err)
				}
				_ = c.SetDeadline(time.Now().Add(2 * time.Second))
				for j := 0; j < 20; j++ {
					if err := c.Set("key", []byte("value")); err != nil {
						t.Fatalf("set: %v", err)
					}
				}
				_ = c.Close()
				stable = settled()
			}
			if stable {
				break
			}
		}
	}

	if w := proxy.Snapshot().Weights; w[0] >= w[1] {
		t.Errorf("weights = %v; slow server should hold less", w)
	}
	if proxy.Stats().Samples == 0 {
		t.Error("estimator produced no samples from live traffic")
	}
}

func TestProxyHealthEjection(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	// Backend A on a fixed address we can kill and resurrect.
	a := memcache.NewServer()
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addrA := a.Addr().String()
	go func() { _ = a.Serve() }()
	_, addrB := startBackend(t)

	proxy, err := New(Config{
		Backends:       []string{addrA, addrB},
		Policy:         control.NewRoundRobin(2),
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	doSet := func() error {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			return err
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(time.Second))
		return c.Set("k", []byte("v"))
	}
	if err := doSet(); err != nil {
		t.Fatalf("healthy pool: %v", err)
	}

	// Kill A and wait for the prober to eject it.
	_ = a.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !proxy.Stats().Down[0] {
		time.Sleep(20 * time.Millisecond)
	}
	if !proxy.Stats().Down[0] {
		t.Fatal("dead backend never ejected")
	}
	// Every connection must now succeed via B, including the ones round
	// robin would have sent to A.
	for i := 0; i < 4; i++ {
		if err := doSet(); err != nil {
			t.Fatalf("request during ejection failed: %v", err)
		}
	}
	if proxy.Stats().Fallbacks == 0 {
		t.Error("no fallbacks counted while A was down")
	}

	// Resurrect A on the same address; the prober must readmit it.
	a2 := memcache.NewServer()
	if err := a2.Listen(addrA); err != nil {
		t.Fatalf("rebind %s: %v", addrA, err)
	}
	go func() { _ = a2.Serve() }()
	t.Cleanup(func() { _ = a2.Close() })
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Down[0] {
		time.Sleep(20 * time.Millisecond)
	}
	if proxy.Stats().Down[0] {
		t.Fatal("recovered backend never readmitted")
	}
	if err := doSet(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestStatusHandler(t *testing.T) {
	_, b0 := startBackend(t)
	_, b1 := startBackend(t)
	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends: []string{"a", "b"}, Alpha: 0.1, TableSize: 1021,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, paddr := startProxy(t, la, b0, b1)

	// Generate a little traffic so counters are non-zero.
	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Set("k", []byte("v"))
	_ = c.Close()

	srv := httptest.NewServer(proxy.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Policy != "latency-aware" {
		t.Errorf("policy = %q", snap.Policy)
	}
	if len(snap.Backends) != 2 || len(snap.Weights) != 2 || len(snap.LatenciesMs) != 2 {
		t.Errorf("snapshot shape: backends=%d weights=%d latencies=%d",
			len(snap.Backends), len(snap.Weights), len(snap.LatenciesMs))
	}
	if snap.Stats.Accepted != 1 {
		t.Errorf("accepted = %d", snap.Stats.Accepted)
	}
	if snap.UptimeSeconds <= 0 {
		t.Error("uptime not positive")
	}

	// A weightless policy omits the optional fields.
	proxy2, _ := startProxy(t, control.NewRoundRobin(2), b0, b1)
	snap2 := proxy2.Snapshot()
	if snap2.Weights != nil || snap2.LatenciesMs != nil {
		t.Error("round robin should not report weights/latencies")
	}
}

// flowCountPolicy tracks live flows per backend; Pick charges a flow and
// FlowClosed discharges it, so leaks show up as a nonzero live count.
type flowCountPolicy struct {
	n    int
	next int
	live []int64
}

func newFlowCountPolicy(n int) *flowCountPolicy {
	return &flowCountPolicy{n: n, live: make([]int64, n)}
}

func (f *flowCountPolicy) Name() string                                     { return "flowcount" }
func (f *flowCountPolicy) NumBackends() int                                 { return f.n }
func (f *flowCountPolicy) ObserveLatency(int, time.Duration, time.Duration) {}
func (f *flowCountPolicy) FlowClosed(b int, _ time.Duration)                { f.live[b]-- }
func (f *flowCountPolicy) Pick(_ packet.FlowKey, _ time.Duration) int {
	b := f.next % f.n
	f.next++
	f.live[b]++
	return b
}

// TestWholePoolEjectedUndoesPick ejects every backend and verifies that
// dropped connections undo their pick in the policy: without the
// FlowClosed(orig) on the drop path, each dropped connection would leak one
// live flow in the policy's per-backend accounting forever.
func TestWholePoolEjectedUndoesPick(t *testing.T) {
	_, addrA := startBackend(t)
	_, addrB := startBackend(t)
	pol := newFlowCountPolicy(2)
	proxy, paddr := startProxy(t, pol, addrA, addrB)

	// Eject the whole pool directly (the prober is off in this config).
	proxy.down[0].Store(true)
	proxy.down[1].Store(true)

	for i := 0; i < 4; i++ {
		c, err := net.DialTimeout("tcp", paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// The proxy drops the connection without relaying; wait for EOF.
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Error("expected connection to be dropped with the pool ejected")
		}
		_ = c.Close()
	}

	// handle() runs in per-connection goroutines; wait for the accounting
	// to settle.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		settled := true
		proxy.ctrl.Do(func(control.Policy) {
			for _, n := range pol.live {
				if n != 0 {
					settled = false
				}
			}
		})
		if settled {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	proxy.ctrl.Do(func(control.Policy) {
		for b, n := range pol.live {
			if n != 0 {
				t.Errorf("backend %d: %d live flows leaked in policy accounting", b, n)
			}
		}
	})
}

// TestRelayBufferPool verifies the relay buffer pool hands out
// Config.BufferSize buffers, recycles them, and that a get/put cycle is
// allocation-free in steady state.
func TestRelayBufferPool(t *testing.T) {
	p, err := New(Config{
		Backends:   []string{"127.0.0.1:1"},
		Policy:     control.NewRoundRobin(1),
		BufferSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := p.getBuf()
	if len(*b) != 8<<10 {
		t.Fatalf("pooled buffer length %d, want %d", len(*b), 8<<10)
	}
	p.putBuf(b)

	// Steady state: a connection's get/put pair must not hit the
	// allocator. One stray GC clearing the pool mid-run shows up as a
	// fraction well below 1; a real regression (fresh make per get) as >= 1.
	allocs := testing.AllocsPerRun(1000, func() {
		bp := p.getBuf()
		p.putBuf(bp)
	})
	if allocs >= 1 {
		t.Errorf("relay buffer get/put: %.2f allocs/op, want 0 (pool not reusing)", allocs)
	}
}

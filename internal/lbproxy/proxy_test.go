package lbproxy

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/faults"
	"inbandlb/internal/memcache"
	"inbandlb/internal/packet"
)

// startBackend runs a memcached server on an ephemeral port.
func startBackend(t *testing.T) (*memcache.Server, string) {
	t.Helper()
	s := memcache.NewServer()
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s, s.Addr().String()
}

// startProxy runs a proxy over the given backends.
func startProxy(t *testing.T, pol control.Policy, backends ...string) (*Proxy, string) {
	t.Helper()
	p, err := New(Config{Backends: backends, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve() }()
	t.Cleanup(func() { _ = p.Close() })
	return p, p.Addr().String()
}

func TestProxyValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(Config{Policy: control.NewRoundRobin(2), Backends: []string{"x"}}); err == nil {
		t.Error("backend mismatch accepted")
	}
	if _, err := New(Config{
		Policy:    control.NewRoundRobin(1),
		Backends:  []string{"x"},
		FlowTable: core.FlowTableConfig{Ensemble: core.EnsembleConfig{Timeouts: []time.Duration{2, 1}}},
	}); err == nil {
		t.Error("bad flow table accepted")
	}
}

func TestProxyRelaysMemcacheTraffic(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxy(t, control.NewRoundRobin(1), baddr)

	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("through-proxy")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "through-proxy" {
		t.Fatalf("get through proxy: %q ok=%v err=%v", v, ok, err)
	}
	st := proxy.Stats()
	if st.Accepted != 1 || st.PerBackend[0] != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxySpreadsConnections(t *testing.T) {
	_, b0 := startBackend(t)
	_, b1 := startBackend(t)
	proxy, paddr := startProxy(t, control.NewRoundRobin(2), b0, b1)

	for i := 0; i < 6; i++ {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		_ = c.Close()
	}
	// Wait for relays to wind down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	st := proxy.Stats()
	if st.PerBackend[0] != 3 || st.PerBackend[1] != 3 {
		t.Errorf("per-backend conns = %v, want [3 3]", st.PerBackend)
	}
}

func TestProxyDialErrorCounted(t *testing.T) {
	// Point at a dead backend: connections drop but the proxy survives.
	proxy, paddr := startProxy(t, control.NewRoundRobin(1), "127.0.0.1:1")
	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(500 * time.Millisecond))
	if err := c.Set("k", []byte("v")); err == nil {
		t.Error("set succeeded against dead backend")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().DialErrors == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if proxy.Stats().DialErrors == 0 {
		t.Error("dial error not counted")
	}
}

// TestProxyEndToEndFeedback is the live-socket version of Fig. 3 at test
// scale: two real memcached servers, one degraded via the admin delay
// command, a closed-loop client workload, and the latency-aware policy.
// The proxy must route new connections away from the slow server.
func TestProxyEndToEndFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	slow, slowAddr := startBackend(t)
	fast, fastAddr := startBackend(t)
	slow.SetDelay(8 * time.Millisecond)
	// The estimator's smallest rung is δ₁ = 64µs: response latencies below
	// it merge whole connections into one batch and over-estimate wildly
	// (see EXPERIMENTS.md, "ladder floor"). Raw loopback (~50µs) sits
	// under that floor, so give the fast server a realistic sub-millisecond
	// service time inside the ladder's operating range.
	fast.SetDelay(400 * time.Microsecond)

	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"slow", "fast"},
		Alpha:     0.10,
		TableSize: 1021,
		// Keep the drained server measurable (a 2% trickle starves it of
		// samples and staleness then flip-flops the decision), tolerate
		// scheduler-induced sample droughts, and require a clear gap —
		// loopback under parallel-test CPU contention is noisy.
		MinWeight:       0.10,
		Cooldown:        5 * time.Millisecond,
		HysteresisRatio: 1.5,
		Latency: core.ServerLatencyConfig{
			HalfLife:  25 * time.Millisecond,
			Staleness: 3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, paddr := startProxy(t, la, slowAddr, fastAddr)

	// Closed-loop workload: sequential connections, several requests each.
	// Drive traffic until the controller settles on the fast server (or a
	// generous deadline passes) — wall-clock timing under parallel-test
	// CPU contention is too noisy for a fixed-duration assertion.
	// Weights are read via Snapshot, which serializes with the sample
	// consumer; touching la directly here would race it.
	settled := func() bool {
		w := proxy.Snapshot().Weights
		return w[0] < w[1]
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_ = c.SetDeadline(time.Now().Add(2 * time.Second))
		for i := 0; i < 20; i++ {
			if err := c.Set("key", []byte("value")); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		_ = c.Close()
		// Require the settled state to persist across a few connections,
		// not just a momentary flip.
		if settled() {
			stable := true
			for i := 0; i < 5 && stable; i++ {
				c, err := memcache.Dial(paddr, time.Second)
				if err != nil {
					t.Fatal(err)
				}
				_ = c.SetDeadline(time.Now().Add(2 * time.Second))
				for j := 0; j < 20; j++ {
					if err := c.Set("key", []byte("value")); err != nil {
						t.Fatalf("set: %v", err)
					}
				}
				_ = c.Close()
				stable = settled()
			}
			if stable {
				break
			}
		}
	}

	if w := proxy.Snapshot().Weights; w[0] >= w[1] {
		t.Errorf("weights = %v; slow server should hold less", w)
	}
	if proxy.Stats().Samples == 0 {
		t.Error("estimator produced no samples from live traffic")
	}
}

func TestProxyHealthEjection(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	// Backend A on a fixed address we can kill and resurrect.
	a := memcache.NewServer()
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addrA := a.Addr().String()
	go func() { _ = a.Serve() }()
	_, addrB := startBackend(t)

	proxy, err := New(Config{
		Backends:       []string{addrA, addrB},
		Policy:         control.NewRoundRobin(2),
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	doSet := func() error {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			return err
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(time.Second))
		return c.Set("k", []byte("v"))
	}
	if err := doSet(); err != nil {
		t.Fatalf("healthy pool: %v", err)
	}

	// Kill A and wait for the prober to eject it.
	_ = a.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !proxy.Stats().Down[0] {
		time.Sleep(20 * time.Millisecond)
	}
	if !proxy.Stats().Down[0] {
		t.Fatal("dead backend never ejected")
	}
	// Every connection must now succeed via B, including the ones round
	// robin would have sent to A.
	for i := 0; i < 4; i++ {
		if err := doSet(); err != nil {
			t.Fatalf("request during ejection failed: %v", err)
		}
	}
	if proxy.Stats().Fallbacks == 0 {
		t.Error("no fallbacks counted while A was down")
	}

	// Resurrect A on the same address; the prober must readmit it.
	a2 := memcache.NewServer()
	if err := a2.Listen(addrA); err != nil {
		t.Fatalf("rebind %s: %v", addrA, err)
	}
	go func() { _ = a2.Serve() }()
	t.Cleanup(func() { _ = a2.Close() })
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Down[0] {
		time.Sleep(20 * time.Millisecond)
	}
	if proxy.Stats().Down[0] {
		t.Fatal("recovered backend never readmitted")
	}
	if err := doSet(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestStatusHandler(t *testing.T) {
	_, b0 := startBackend(t)
	_, b1 := startBackend(t)
	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends: []string{"a", "b"}, Alpha: 0.1, TableSize: 1021,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, paddr := startProxy(t, la, b0, b1)

	// Generate a little traffic so counters are non-zero.
	c, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Set("k", []byte("v"))
	_ = c.Close()

	srv := httptest.NewServer(proxy.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Policy != "latency-aware" {
		t.Errorf("policy = %q", snap.Policy)
	}
	if len(snap.Backends) != 2 || len(snap.Weights) != 2 || len(snap.LatenciesMs) != 2 {
		t.Errorf("snapshot shape: backends=%d weights=%d latencies=%d",
			len(snap.Backends), len(snap.Weights), len(snap.LatenciesMs))
	}
	if snap.Stats.Accepted != 1 {
		t.Errorf("accepted = %d", snap.Stats.Accepted)
	}
	if snap.UptimeSeconds <= 0 {
		t.Error("uptime not positive")
	}

	// A weightless policy omits the optional fields.
	proxy2, _ := startProxy(t, control.NewRoundRobin(2), b0, b1)
	snap2 := proxy2.Snapshot()
	if snap2.Weights != nil || snap2.LatenciesMs != nil {
		t.Error("round robin should not report weights/latencies")
	}
}

// flowCountPolicy tracks live flows per backend; Pick charges a flow and
// FlowClosed discharges it, so leaks show up as a nonzero live count.
type flowCountPolicy struct {
	n    int
	next int
	live []int64
}

func newFlowCountPolicy(n int) *flowCountPolicy {
	return &flowCountPolicy{n: n, live: make([]int64, n)}
}

func (f *flowCountPolicy) Name() string                                     { return "flowcount" }
func (f *flowCountPolicy) NumBackends() int                                 { return f.n }
func (f *flowCountPolicy) ObserveLatency(int, time.Duration, time.Duration) {}
func (f *flowCountPolicy) FlowClosed(b int, _ time.Duration)                { f.live[b]-- }
func (f *flowCountPolicy) Pick(_ packet.FlowKey, _ time.Duration) int {
	b := f.next % f.n
	f.next++
	f.live[b]++
	return b
}

// TestWholePoolEjectedUndoesPick ejects every backend through the
// controller (the layer routing actually consults) and verifies that
// dropped connections are counted in Stats.Dropped, satisfy the accounting
// identity, and undo their pick in the policy: without the FlowClosed(orig)
// on the drop path, each dropped connection would leak one live flow in the
// policy's per-backend accounting forever.
func TestWholePoolEjectedUndoesPick(t *testing.T) {
	_, addrA := startBackend(t)
	_, addrB := startBackend(t)
	pol := newFlowCountPolicy(2)
	proxy, paddr := startProxy(t, pol, addrA, addrB)

	// Eject the whole pool (the prober is off in this config).
	proxy.ctrl.SetEjected(0, true)
	proxy.ctrl.SetEjected(1, true)

	for i := 0; i < 4; i++ {
		c, err := net.DialTimeout("tcp", paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		// The proxy drops the connection without relaying; wait for EOF.
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Error("expected connection to be dropped with the pool ejected")
		}
		_ = c.Close()
	}

	// handle() runs in per-connection goroutines; wait for the accounting
	// to settle.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Dropped < 4 {
		time.Sleep(10 * time.Millisecond)
	}
	st := proxy.Stats()
	if st.Dropped != 4 {
		t.Errorf("Dropped = %d, want 4", st.Dropped)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("identity violated: accepted=%d routed=%d dialErrors=%d dropped=%d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
	proxy.ctrl.Do(func(control.Policy) {
		for b, n := range pol.live {
			if n != 0 {
				t.Errorf("backend %d: %d live flows leaked in policy accounting", b, n)
			}
		}
	})
}

// TestProxyDialFailover kills one of two backends without ejecting it: the
// routed dial fails, the one-shot failover rescues the connection onto the
// live backend, and the accounting records a Failover — not a DialError.
func TestProxyDialFailover(t *testing.T) {
	a := memcache.NewServer()
	if err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addrA := a.Addr().String()
	go func() { _ = a.Serve() }()
	_, addrB := startBackend(t)
	proxy, paddr := startProxy(t, control.NewRoundRobin(2), addrA, addrB)

	_ = a.Close() // A is dead but NOT ejected: every dial to it fails

	for i := 0; i < 6; i++ {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_ = c.SetDeadline(time.Now().Add(2 * time.Second))
		if err := c.Set("k", []byte("v")); err != nil {
			t.Fatalf("conn %d through failover: %v", i, err)
		}
		_ = c.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	st := proxy.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers recorded with a dead un-ejected backend")
	}
	if st.DialErrors != 0 {
		t.Errorf("DialErrors = %d, want 0 (failover should absorb)", st.DialErrors)
	}
	if st.PerBackend[0] != 0 {
		t.Errorf("dead backend relayed %d connections", st.PerBackend[0])
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("identity violated: %+v", st)
	}
}

// TestProxyPassiveOutageEjection is the acceptance scenario: active probes
// OFF, a refuse-outage on one backend injected through the chaos dialer,
// and only passive in-band signals available. The proxy must eject the
// backend from dial errors alone, absorb subsequent picks via failover
// with zero terminal dial errors, and re-admit through slow-start once the
// outage lifts.
func TestProxyPassiveOutageEjection(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	_, addrA := startBackend(t)
	_, addrB := startBackend(t)

	outageEnd := make(chan struct{})
	var dialSeq atomic.Uint64
	chaos := func(addr string, timeout time.Duration) (net.Conn, error) {
		dialSeq.Add(1)
		if addr == addrA {
			select {
			case <-outageEnd:
			default:
				return nil, faults.ErrInjectedRefuse
			}
		}
		return net.DialTimeout("tcp", addr, timeout)
	}

	proxy, err := New(Config{
		Backends:        []string{addrA, addrB},
		Policy:          control.NewRoundRobin(2),
		ControlInterval: 2 * time.Millisecond,
		// HealthInterval zero: NO active probes. Detection is passive only.
		Detector: control.DetectorConfig{
			Enabled:          true,
			FailureThreshold: 3,
			BackoffInitial:   150 * time.Millisecond,
			SlowStartTicks:   20,
		},
		Dial: chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	doSet := func() error {
		c, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			return err
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(2 * time.Second))
		return c.Set("k", []byte("v"))
	}

	// Drive connections until passive detection ejects A. Every one must
	// succeed — failover absorbs the refused dials meanwhile.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !proxy.Stats().Down[0] {
		if err := doSet(); err != nil {
			t.Fatalf("request during outage failed: %v", err)
		}
	}
	st := proxy.Stats()
	if !st.Down[0] {
		t.Fatal("passive signals never ejected the dead backend")
	}
	if st.Failovers == 0 {
		t.Error("no failovers while outage was undetected")
	}
	if st.DialErrors != 0 {
		t.Errorf("terminal DialErrors = %d, want 0", st.DialErrors)
	}

	// After ejection no more dials reach A: routing avoids it entirely, so
	// connections stop being refused at the dial layer too.
	seqAtEject := dialSeq.Load()
	for i := 0; i < 6; i++ {
		if err := doSet(); err != nil {
			t.Fatalf("request after ejection failed: %v", err)
		}
	}
	if st := proxy.Stats(); st.DialErrors != 0 {
		t.Errorf("post-ejection terminal DialErrors = %d, want 0", st.DialErrors)
	}
	_ = seqAtEject

	// Lift the outage: the backoff expires, a half-open trial succeeds, and
	// slow-start ramps A back to full admission.
	close(outageEnd)
	deadline = time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if !proxy.Stats().Down[0] && proxy.ctrl.HealthState(0) == control.Healthy {
			break
		}
		_ = doSet() // keep trial traffic flowing
		time.Sleep(5 * time.Millisecond)
	}
	if proxy.Stats().Down[0] {
		t.Fatal("backend never re-admitted after outage end")
	}
	if hs := proxy.ctrl.HealthState(0); hs != control.Healthy {
		t.Fatalf("health state after recovery = %v, want healthy", hs)
	}
	// And it takes traffic again.
	if err := doSet(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

// TestProxyGracefulDrain verifies Close with a DrainTimeout lets an
// in-flight connection finish instead of chopping it.
func TestProxyGracefulDrain(t *testing.T) {
	_, baddr := startBackend(t)
	p, err := New(Config{
		Backends:     []string{baddr},
		Policy:       control.NewRoundRobin(1),
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve() }()

	c, err := memcache.Dial(p.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(3 * time.Second))
	if err := c.Set("warm", []byte("up")); err != nil {
		t.Fatal(err)
	}

	// Close concurrently with one more request on the established conn:
	// drain must let it complete.
	closed := make(chan error, 1)
	go func() { closed <- p.Close() }()
	// Give Close a moment to stop the accept loop.
	time.Sleep(50 * time.Millisecond)
	if err := c.Set("mid-drain", []byte("v")); err != nil {
		t.Errorf("in-flight request chopped during drain: %v", err)
	}
	_ = c.Close()
	if err := <-closed; err != nil {
		t.Errorf("close: %v", err)
	}
	st := p.Stats()
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("identity violated after drain: %+v", st)
	}
}

// TestRelayBufferPool verifies the relay buffer pool hands out
// Config.BufferSize buffers, recycles them, and that a get/put cycle is
// allocation-free in steady state.
func TestRelayBufferPool(t *testing.T) {
	p, err := New(Config{
		Backends:   []string{"127.0.0.1:1"},
		Policy:     control.NewRoundRobin(1),
		BufferSize: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	b := p.getBuf()
	if len(*b) != 8<<10 {
		t.Fatalf("pooled buffer length %d, want %d", len(*b), 8<<10)
	}
	p.putBuf(b)

	// Steady state: a connection's get/put pair must not hit the
	// allocator. One stray GC clearing the pool mid-run shows up as a
	// fraction well below 1; a real regression (fresh make per get) as >= 1.
	allocs := testing.AllocsPerRun(1000, func() {
		bp := p.getBuf()
		p.putBuf(bp)
	})
	if allocs >= 1 {
		t.Errorf("relay buffer get/put: %.2f allocs/op, want 0 (pool not reusing)", allocs)
	}
}

package lbproxy

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/memcache"
	"inbandlb/internal/testbed"
)

// startProxyCfg runs a proxy with a full config (backends already set).
func startProxyCfg(t *testing.T, cfg Config) (*Proxy, string) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve() }()
	t.Cleanup(func() { _ = p.Close() })
	return p, p.Addr().String()
}

// assertIdentity checks the Accepted accounting identity on a settled proxy.
func assertIdentity(t *testing.T, st Stats) {
	t.Helper()
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("identity violated: accepted %d != routed %d + dialErrors %d + dropped %d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
}

// TestProxySpliceRelayMemcache proves the zero-copy path relays real
// protocol traffic correctly and that it actually ran (splice syscalls
// observed) where the platform supports it.
func TestProxySpliceRelayMemcache(t *testing.T) {
	backend, baddr := startBackend(t)
	// Service time must clear the δ₁ = 64 µs ladder floor or raw-loopback
	// gaps merge into one batch and sampling depends on scheduling jitter
	// (EXPERIMENTS.md "Known limitation: the ladder floor").
	backend.SetDelay(400 * time.Microsecond)
	proxy, paddr := startProxyCfg(t, Config{
		Backends: []string{baddr},
		Policy:   control.NewRoundRobin(1),
		Splice:   true,
	})

	cli, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
	// Several round trips: the first request chunk goes through userspace
	// (first-byte observation), everything after is eligible for splice.
	big := strings.Repeat("v", 4096)
	for i := 0; i < 10; i++ {
		if err := cli.Set("k", []byte(big)); err != nil {
			t.Fatal(err)
		}
		v, ok, err := cli.Get("k")
		if err != nil || !ok || string(v) != big {
			t.Fatalf("get %d: ok=%v err=%v len=%d", i, ok, err, len(v))
		}
	}
	// Sample delivery is asynchronous to the relay; give it a moment to land.
	var st Stats
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = proxy.Stats()
		if st.Samples > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Samples == 0 {
		t.Error("no estimator samples on the splice path")
	}
	if spliceAvailable() && st.RelaySplices == 0 {
		t.Error("splice enabled and available, but no splice syscalls recorded")
	}
	assertIdentity(t, st)
}

// TestProxyHalfClose pins CloseWrite propagation through the relay in
// both dataplane modes: a client that half-closes after its request must
// still receive the full response, then EOF.
func TestProxyHalfClose(t *testing.T) {
	for _, mode := range []struct {
		name   string
		splice bool
	}{{"splice", true}, {"fallback", false}} {
		t.Run(mode.name, func(t *testing.T) {
			_, baddr := startBackend(t)
			_, paddr := startProxyCfg(t, Config{
				Backends: []string{baddr},
				Policy:   control.NewRoundRobin(1),
				Splice:   mode.splice,
			})
			conn, err := net.DialTimeout("tcp", paddr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write([]byte("set hk 0 0 2\r\nhi\r\n")); err != nil {
				t.Fatal(err)
			}
			// Half-close: FIN follows the request; the backend must still
			// see the bytes and the response must still come back.
			if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
				t.Fatal(err)
			}
			resp, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil || strings.TrimSpace(resp) != "STORED" {
				t.Fatalf("response %q err=%v", resp, err)
			}
			// And then EOF, once the backend finishes and closes.
			_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) && err == nil {
				t.Error("expected EOF after half-closed exchange")
			}
		})
	}
}

// TestProxySpliceFirstByteLatencyMatchesFallback is the estimator
// equivalence check: one identical paced workload through the proxy in
// zero-copy mode and in copy mode must yield the same observed in-band
// latency (within loopback jitter). This is the guarantee the whole
// splice refactor hangs on — timestamping readiness events is the same
// measurement as timestamping userspace reads.
func TestProxySpliceFirstByteLatencyMatchesFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("paced live-socket test")
	}
	const (
		serviceDelay = 8 * time.Millisecond
		exchanges    = 40
	)
	run := func(splice bool) (latMs, clientMs float64, st Stats) {
		// Two identical backends: latency-aware requires >= 2, and one
		// client connection lands on exactly one of them.
		addrs := make([]string, 2)
		for i := range addrs {
			echo := testbed.NewLiveEcho(serviceDelay)
			if err := echo.Listen("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			go func() { _ = echo.Serve() }()
			defer echo.Close()
			addrs[i] = echo.Addr().String()
		}

		la, err := control.NewLatencyAware(control.LatencyAwareConfig{
			Backends: addrs, Alpha: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy, err := New(Config{
			Backends: addrs,
			Policy:   la,
			Splice:   splice,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := proxy.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go func() { _ = proxy.Serve() }()
		defer proxy.Close()

		rtts, err := testbed.LiveExchange(proxy.Addr().String(), exchanges, 64)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]time.Duration(nil), rtts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		clientMs = sorted[len(sorted)/2].Seconds() * 1e3
		time.Sleep(20 * time.Millisecond) // a couple of control ticks: merge samples
		snap := proxy.Snapshot()
		st = proxy.Stats()
		serving := -1
		for i, n := range st.PerBackend {
			if n > 0 {
				serving = i
			}
		}
		if serving < 0 || serving >= len(snap.LatenciesMs) {
			t.Fatalf("no serving backend: perBackend=%v latencies=%v", st.PerBackend, snap.LatenciesMs)
		}
		return snap.LatenciesMs[serving], clientMs, st
	}

	splicedMs, splicedClientMs, splicedStats := run(true)
	copiedMs, copiedClientMs, copiedStats := run(false)
	t.Logf("in-band latency vs client ground truth: splice=%.2fms (client %.2fms), copy=%.2fms (client %.2fms), service delay %v",
		splicedMs, splicedClientMs, copiedMs, copiedClientMs, serviceDelay)
	t.Logf("splice run syscalls: reads=%d writes=%d splices=%d; copy run: reads=%d writes=%d splices=%d",
		splicedStats.RelayReads, splicedStats.RelayWrites, splicedStats.RelaySplices,
		copiedStats.RelayReads, copiedStats.RelayWrites, copiedStats.RelaySplices)

	// The load-proof assertion: each run's estimator view must track that
	// run's OWN client-observed median RTT (machine load inflates both
	// together — comparing two runs' absolute numbers does not survive a
	// busy single-core host). The inter-arrival the proxy times is one
	// full client round trip, so estimator ≈ client median.
	norm := func(name string, est, client float64) float64 {
		if client < serviceDelay.Seconds()*1e3*0.8 {
			t.Fatalf("%s: client median %.2fms below service delay — broken workload", name, client)
		}
		r := est / client
		if r < 0.5 || r > 2.0 {
			t.Errorf("%s: estimator %.2fms does not track client ground truth %.2fms (ratio %.2f)",
				name, est, client, r)
		}
		return r
	}
	sr := norm("splice", splicedMs, splicedClientMs)
	cr := norm("copy", copiedMs, copiedClientMs)
	// Cross-mode: both relay implementations must sit at the same place
	// relative to their own ground truth.
	if d := sr - cr; d < -0.5 || d > 0.5 {
		t.Errorf("relay modes disagree about latency relative to ground truth: splice ratio %.2f, copy ratio %.2f", sr, cr)
	}
	if spliceAvailable() && copiedStats.RelaySplices != 0 {
		t.Error("copy run recorded splice syscalls")
	}
}

// TestProxyPooledConnReuse drives two sequential client sessions and
// asserts the second one rides the first one's backend connection.
func TestProxyPooledConnReuse(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxyCfg(t, Config{
		Backends:    []string{baddr},
		Policy:      control.NewRoundRobin(1),
		Splice:      true,
		PoolIdle:    2,
		PoolQuiesce: 5 * time.Millisecond,
	})

	exchange := func(key, val string) {
		cli, err := memcache.Dial(paddr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
		if err := cli.Set(key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		v, ok, err := cli.Get(key)
		if err != nil || !ok || string(v) != val {
			t.Fatalf("get %q: ok=%v err=%v", key, ok, err)
		}
	}

	exchange("a", "1")
	// The first session's backend conn recycles after PoolQuiesce silence.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().PoolRecycled == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if proxy.Stats().PoolRecycled == 0 {
		t.Fatal("first session's backend conn never recycled")
	}
	exchange("b", "2")

	st := proxy.Stats()
	if st.PoolHits == 0 {
		t.Errorf("second session did not reuse the pooled conn: %+v", st)
	}
	assertIdentity(t, st)
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped {
		t.Errorf("sample identity broken: %d != %d + %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
}

// failWriteConn passes reads through but fails every write — the
// deterministic stand-in for a pooled connection whose backend died
// between the checkout probe and first use. It deliberately does not
// expose SyscallConn, so the checkout probe passes it unprobed.
type failWriteConn struct {
	net.Conn
}

func (f *failWriteConn) Write([]byte) (int, error) {
	return 0, errors.New("injected: backend died after checkout")
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	_ = lis.Close()
	return addr
}

// TestProxyPooledDeadBackend is the satellite table: a pooled connection
// that fails its first write must be accounted exactly like a failed dial
// — redial, then the existing failover path — with the Accepted identity
// intact in every outcome.
func TestProxyPooledDeadBackend(t *testing.T) {
	cases := []struct {
		name string
		// backends: "live" is replaced by a real memcached, "dead" by a
		// refusing address. The failing pooled conn is planted for backend 0.
		backends      []string
		wantErr       bool   // client exchange fails
		wantDialErrs  uint64 // terminal dial errors
		wantFailovers uint64
		wantBackend   int // backend that must serve the rescued exchange (-1 none)
	}{
		{
			name:     "redial same backend succeeds",
			backends: []string{"live"},
			wantErr:  false, wantDialErrs: 0, wantFailovers: 0, wantBackend: 0,
		},
		{
			name:     "backend down, failover rescues",
			backends: []string{"dead", "live"},
			wantErr:  false, wantDialErrs: 0, wantFailovers: 1, wantBackend: 1,
		},
		{
			name:     "all backends down, terminal dial error",
			backends: []string{"dead", "dead"},
			wantErr:  true, wantDialErrs: 1, wantFailovers: 0, wantBackend: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addrs := make([]string, len(tc.backends))
			for i, kind := range tc.backends {
				if kind == "live" {
					_, addrs[i] = startBackend(t)
				} else {
					addrs[i] = deadAddr(t)
				}
			}
			proxy, paddr := startProxyCfg(t, Config{
				Backends: addrs,
				// RoundRobin picks backend 0 for the first connection.
				Policy:   control.NewRoundRobin(len(addrs)),
				PoolIdle: 2,
			})
			// Plant the doomed pooled conn for backend 0. The inner conn
			// is a pipe end so Close is clean; the probe passes it.
			inner, peer := net.Pipe()
			defer peer.Close()
			if !proxy.pool.Put(0, 0, &failWriteConn{Conn: inner}, time.Time{}) {
				t.Fatal("could not plant pooled conn")
			}

			cli, err := memcache.Dial(paddr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
			setErr := cli.Set("k", []byte("v"))
			_ = cli.Close()
			if (setErr != nil) != tc.wantErr {
				t.Fatalf("set err = %v, wantErr = %v", setErr, tc.wantErr)
			}

			// Let the handler settle (it may still be tearing down).
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
				time.Sleep(2 * time.Millisecond)
			}
			st := proxy.Stats()
			if st.PoolFirstWriteFails != 1 {
				t.Errorf("poolFirstWriteFails = %d, want 1", st.PoolFirstWriteFails)
			}
			if st.DialErrors != tc.wantDialErrs {
				t.Errorf("dialErrors = %d, want %d", st.DialErrors, tc.wantDialErrs)
			}
			if st.Failovers != tc.wantFailovers {
				t.Errorf("failovers = %d, want %d", st.Failovers, tc.wantFailovers)
			}
			if tc.wantBackend >= 0 && st.PerBackend[tc.wantBackend] != 1 {
				t.Errorf("perBackend = %v, want conn on backend %d", st.PerBackend, tc.wantBackend)
			}
			assertIdentity(t, st)
		})
	}
}

// TestProxyPooledProbeDiscardsClosedConn: a pooled connection that is
// already closed must be discarded by the checkout probe, falling back to
// a fresh dial — the client never notices.
func TestProxyPooledProbeDiscardsClosedConn(t *testing.T) {
	_, baddr := startBackend(t)
	proxy, paddr := startProxyCfg(t, Config{
		Backends: []string{baddr},
		Policy:   control.NewRoundRobin(1),
		PoolIdle: 2,
	})
	// Plant a real-but-closed TCP conn.
	c, err := net.DialTimeout("tcp", baddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !proxy.pool.Put(0, 0, c, time.Time{}) {
		t.Fatal("checkin failed")
	}
	_ = c.Close()

	cli, err := memcache.Dial(paddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
	if err := cli.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := proxy.Stats()
	if st.PoolDead != 1 {
		t.Errorf("poolDead = %d, want 1", st.PoolDead)
	}
	if st.PoolFirstWriteFails != 0 {
		t.Errorf("first-write fails = %d, want 0 (probe should have caught it)", st.PoolFirstWriteFails)
	}
	assertIdentity(t, st)
}

// TestProxyMultiAcceptor runs the full syscall-diet configuration —
// REUSEPORT acceptor shards, splice, pooling — under concurrent clients.
func TestProxyMultiAcceptor(t *testing.T) {
	const nBackends = 2
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}
	proxy, paddr := startProxyCfg(t, Config{
		Backends:  backends,
		Policy:    control.NewRoundRobin(nBackends),
		Acceptors: 4,
		Splice:    true,
		PoolIdle:  4,
	})
	if runtime.GOOS == "linux" && len(proxy.listeners) != 4 {
		t.Errorf("listener shards = %d, want 4 on linux", len(proxy.listeners))
	}

	const clients = 16
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			cli, err := memcache.Dial(paddr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
			for s := 0; s < 5; s++ {
				if err := cli.Set("mk", []byte("mv")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := proxy.Stats()
	if st.Accepted != clients {
		t.Errorf("accepted = %d, want %d", st.Accepted, clients)
	}
	assertIdentity(t, st)
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped || st.SamplesDropped != 0 {
		t.Errorf("sample identity: %d != %d + %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
}

// Package lbproxy is the live userspace counterpart of the simulated
// dataplane: a layer-4 TCP load balancer whose measurement pipeline is fed
// exclusively by client→server byte arrivals.
//
// A userspace TCP proxy cannot do true direct server return — it must relay
// response bytes — but the paper's constraint is about what the measurement
// sees, and that is preserved structurally: response-direction relaying
// happens in a plain copy loop with no timestamps taken, while every
// request-direction read feeds the per-flow estimator exactly as the
// simulated LB feeds it per packet. This is the substitution DESIGN.md
// documents for the Cilium/XDP dataplane (repro band: userspace prototype).
//
// # Concurrency model
//
// The data plane and the control plane are split RCU-style around a
// control.Controller, mirroring a per-CPU dataplane feeding one controller:
//
//   - Per-flow estimator state lives in a core.ShardedFlowTable
//     (GOMAXPROCS lock-striped shards by default), so concurrent
//     connections' request-direction reads only contend when their flows
//     hash to the same shard. Each flow's key is hashed exactly once, at
//     accept; the hash is reused for routing, flow-shard selection, and
//     sample aggregation. No global lock is taken on the read path.
//   - Routing reads an immutable control.Snapshot through an atomic
//     pointer: for table-based policies (maglev, latency-aware,
//     proportional) a new connection's pick — including health-eject
//     fallback — is a pure read, no mutex, no channel, zero allocations.
//     Stateful policies (roundrobin, leastconn, p2c) fall back to a mutex
//     around the policy.
//   - Packet-rate latency samples are folded into the Controller's
//     per-shard, cache-line-padded accumulators and merged into the policy
//     once per control tick (Config.ControlInterval). Aggregation is
//     lossless — nothing is shed under load — so routing state lags the
//     freshest sample by at most one control interval.
//   - control.Policy implementations stay single-threaded (their
//     documented contract): the Controller serializes every policy call.
//     Connection-rate calls (FlowClosed, stateful Picks) are applied
//     synchronously under its mutex.
//   - All Stats counters are atomics; Stats() returns a deep copy built
//     from them, never aliasing mutable state.
//   - Idle-flow sweeping uses ShardedFlowTable.SweepNext, one shard per
//     tick, so no sweep ever stalls the whole table.
//
// The DSR constraint is unchanged: response-direction relaying remains
// timestamp-free.
package lbproxy

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/packet"
)

// Config parameterizes the proxy.
type Config struct {
	// Backends are the server addresses, in policy backend-index order.
	Backends []string
	// Policy routes new connections; latency-aware policies receive the
	// estimator's samples. Required. The proxy serializes all calls into
	// it (see the package comment), so it needs no internal locking.
	Policy control.Policy
	// FlowTable configures per-connection estimators.
	FlowTable core.FlowTableConfig
	// Shards is the lock-stripe width for both the flow table and the
	// controller's sample aggregator (they stripe on the same flow hash),
	// rounded up to a power of two. Zero defaults to runtime.GOMAXPROCS(0).
	Shards int
	// ControlInterval is the controller tick period: how often aggregated
	// latency samples are merged into the policy and the routing snapshot
	// is republished. It bounds how stale routing can be relative to the
	// newest sample. Zero defaults to 2 ms.
	ControlInterval time.Duration
	// SweepInterval is the period of the incremental idle-flow sweeper
	// (one shard per tick). Zero defaults to 1 s; negative disables it.
	SweepInterval time.Duration
	// DialTimeout bounds backend dials. Defaults to 2 s.
	DialTimeout time.Duration
	// BufferSize is the relay buffer size. Defaults to 32 KiB.
	BufferSize int
	// HealthInterval enables active health probes (TCP dial) at this
	// period, jittered ±10% so probes across instances do not synchronize.
	// Probe results flip ejection only after consecutive-result thresholds
	// (HealthFailThreshold / HealthRecoverThreshold), so one lost SYN does
	// not flap routing. Zero disables probing — with passive detection
	// enabled (Detector) probes are a backstop, not the primary signal.
	HealthInterval time.Duration
	// HealthTimeout bounds each probe dial. Defaults to min(1s,
	// HealthInterval).
	HealthTimeout time.Duration
	// HealthFailThreshold is how many consecutive probe failures eject a
	// backend; HealthRecoverThreshold how many consecutive successes
	// readmit it. Defaults 3 and 2.
	HealthFailThreshold    int
	HealthRecoverThreshold int
	// Detector configures passive in-band failure detection in the
	// controller: dial errors, relay resets, and per-tick latency
	// aggregates eject without waiting for a probe, and recovery re-admits
	// through half-open trials and slow-start. Zero value disables it.
	Detector control.DetectorConfig
	// Dial overrides the backend dial function (net.DialTimeout on "tcp"
	// by default). Tests and chaos harnesses inject faults.ChaosDialer
	// here; it also carries health-probe dials so the same fault schedule
	// governs both.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// IdleTimeout bounds how long a relay direction may sit idle (no bytes)
	// before the connection is torn down, so a blackholed backend cannot
	// pin goroutines forever. A server-side idle expiry is reported to the
	// passive detector as a relay failure. Zero disables deadlines.
	IdleTimeout time.Duration
	// DrainTimeout is the grace period Close gives in-flight relays before
	// force-closing them. Zero force-closes immediately (the legacy
	// behavior).
	DrainTimeout time.Duration
}

// Stats are cumulative proxy counters. Every accepted connection ends in
// exactly one of three buckets — relayed through some backend
// (PerBackend), failed every dial attempt (DialErrors), or dropped for
// lack of any admitted backend (Dropped) — so the accounting identity
//
//	Accepted == sum(PerBackend) + DialErrors + Dropped
//
// holds once in-flight handlers settle (always after Close).
type Stats struct {
	Accepted uint64
	Active   int64
	// DialErrors counts connections that failed to reach any backend: the
	// routed dial failed and the one-shot failover either had no target or
	// failed too. A connection saved by failover is not a DialError — it
	// lands in PerBackend (for the rescue backend) and in Failovers.
	DialErrors uint64
	// Dropped counts connections discarded because no backend admitted
	// any traffic (whole pool ejected).
	Dropped uint64
	// Samples counts estimator outputs; SamplesDelivered those merged into
	// the policy by controller ticks. SamplesDropped is always zero —
	// shard aggregation is lossless — and is kept so the accounting
	// identity Samples == SamplesDelivered + SamplesDropped (which holds
	// after Close; while relays are hot, up to one tick's worth of samples
	// is in flight in the aggregator) reads the same as before.
	Samples          uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	Fallbacks        uint64   // connections rerouted away from an ejected backend
	Failovers        uint64   // connections rescued by the post-dial-error retry
	PerBackend       []uint64 // connections routed per backend
	Down             []bool   // per backend: admits no traffic (probe or passive)
	Health           []string // per backend: passive-detector state name
}

// Proxy is a running load balancer instance.
type Proxy struct {
	cfg Config
	lis net.Listener

	flows *core.ShardedFlowTable
	ctrl  *control.Controller
	start time.Time

	// bufs recycles relay buffers (two per connection, Config.BufferSize
	// each) so connection churn does not make the allocator the
	// bottleneck. It holds *[]byte to keep Put/Get themselves
	// allocation-free.
	bufs sync.Pool

	accepted   atomic.Uint64
	active     atomic.Int64
	dialErrors atomic.Uint64
	dropped    atomic.Uint64
	samples    atomic.Uint64
	fallbacks  atomic.Uint64
	failovers  atomic.Uint64
	perBackend []atomic.Uint64
	down       []atomic.Bool // probe layer's own view (streak bookkeeping)
	stop       chan struct{}

	closed atomic.Bool
	wg     sync.WaitGroup
	connMu sync.Mutex
	open   map[net.Conn]struct{}
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Policy == nil {
		return nil, errors.New("lbproxy: policy required")
	}
	if len(cfg.Backends) != cfg.Policy.NumBackends() {
		return nil, fmt.Errorf("lbproxy: %d backends for %d policy slots",
			len(cfg.Backends), cfg.Policy.NumBackends())
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 32 << 10
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.HealthInterval > 0 && cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
		if cfg.HealthTimeout > cfg.HealthInterval {
			cfg.HealthTimeout = cfg.HealthInterval
		}
	}
	if cfg.HealthFailThreshold <= 0 {
		cfg.HealthFailThreshold = 3
	}
	if cfg.HealthRecoverThreshold <= 0 {
		cfg.HealthRecoverThreshold = 2
	}
	flows, err := core.NewShardedFlowTable(cfg.FlowTable, cfg.Shards)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:        cfg,
		flows:      flows,
		start:      time.Now(),
		perBackend: make([]atomic.Uint64, len(cfg.Backends)),
		down:       make([]atomic.Bool, len(cfg.Backends)),
		stop:       make(chan struct{}),
		open:       make(map[net.Conn]struct{}),
	}
	// The controller stripes its sample aggregator like the flow table and
	// ticks on the proxy's monotonic clock, so sample timestamps and merge
	// timestamps share a timebase.
	p.ctrl = control.NewController(cfg.Policy, control.ControllerConfig{
		Shards:   flows.Shards(),
		Interval: cfg.ControlInterval,
		Now:      p.now,
		Detector: cfg.Detector,
	})
	// The pool is keyed to this proxy's BufferSize: every buffer it hands
	// out has exactly that capacity, so relays never re-slice.
	size := cfg.BufferSize
	p.bufs.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p, nil
}

// getBuf takes a relay buffer from the pool (allocating only when the pool
// is empty); putBuf returns it for the next connection.
func (p *Proxy) getBuf() *[]byte  { return p.bufs.Get().(*[]byte) }
func (p *Proxy) putBuf(b *[]byte) { p.bufs.Put(b) }

// Stats returns a snapshot of the counters. The snapshot is a deep copy
// assembled from atomics; it never aliases the proxy's mutable state, so
// callers may read it while accepts, relays, and health probes proceed.
func (p *Proxy) Stats() Stats {
	st := Stats{
		Accepted:         p.accepted.Load(),
		Active:           p.active.Load(),
		DialErrors:       p.dialErrors.Load(),
		Dropped:          p.dropped.Load(),
		Samples:          p.samples.Load(),
		SamplesDelivered: p.ctrl.Delivered(),
		SamplesDropped:   p.ctrl.Dropped(),
		Fallbacks:        p.fallbacks.Load(),
		Failovers:        p.failovers.Load(),
		PerBackend:       make([]uint64, len(p.perBackend)),
		Down:             make([]bool, len(p.perBackend)),
		Health:           make([]string, len(p.perBackend)),
	}
	for i := range p.perBackend {
		st.PerBackend[i] = p.perBackend[i].Load()
		// Down reflects what routing sees — manual probe vetoes AND
		// passive ejections — not just the probe loop's own bookkeeping.
		st.Down[i] = p.ctrl.Ejected(i)
		st.Health[i] = p.ctrl.HealthState(i).String()
	}
	return st
}

// dial opens one backend connection through the configured dial hook.
func (p *Proxy) dial(addr string, timeout time.Duration) (net.Conn, error) {
	if p.cfg.Dial != nil {
		return p.cfg.Dial(addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// Listen binds addr.
func (p *Proxy) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.lis = lis
	return nil
}

// Addr returns the bound address (nil before Listen).
func (p *Proxy) Addr() net.Addr {
	if p.lis == nil {
		return nil
	}
	return p.lis.Addr()
}

// Serve accepts and relays connections until Close.
func (p *Proxy) Serve() error {
	if p.lis == nil {
		return errors.New("lbproxy: Serve before Listen")
	}
	p.ctrl.Start()
	if p.cfg.HealthInterval > 0 {
		go p.probeLoop()
	}
	if p.cfg.SweepInterval > 0 {
		go p.sweepLoop()
	}
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// ListenAndServe combines Listen and Serve.
func (p *Proxy) ListenAndServe(addr string) error {
	if err := p.Listen(addr); err != nil {
		return err
	}
	return p.Serve()
}

// Close stops the proxy: it stops accepting, gives in-flight relays up to
// Config.DrainTimeout to finish on their own (graceful drain), force-closes
// whatever remains, and runs a final controller tick so every aggregated
// latency sample is merged into the policy (post-Close Stats satisfy
// Samples == SamplesDelivered + SamplesDropped and the Accepted identity).
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		p.ctrl.Close() // idempotent; runs the final flush tick
		return nil
	}
	close(p.stop)
	var err error
	if p.lis != nil {
		err = p.lis.Close()
	}
	if p.cfg.DrainTimeout > 0 {
		drained := make(chan struct{})
		go func() {
			p.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(p.cfg.DrainTimeout):
		}
	}
	p.connMu.Lock()
	for c := range p.open {
		_ = c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	p.ctrl.Close()
	return err
}

// now returns monotonic time since proxy start, the estimator clock.
func (p *Proxy) now() time.Duration { return time.Since(p.start) }

// flowKeyFor derives the estimator flow key from the connection 4-tuple.
func flowKeyFor(conn net.Conn) packet.FlowKey {
	key := packet.FlowKey{Proto: packet.ProtoTCP}
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		key.SrcIP = ap.Addr().Unmap().As4()
		key.SrcPort = ap.Port()
	}
	if ap, err := netip.ParseAddrPort(conn.LocalAddr().String()); err == nil {
		key.DstIP = ap.Addr().Unmap().As4()
		key.DstPort = ap.Port()
	}
	return key
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	key := flowKeyFor(client)
	hash := key.Hash() // hashed once; reused for routing, sharding, sampling
	now := p.now()

	// Route applies health ejection inline: for table-based policies it is
	// a pure snapshot read; for stateful ones the controller undoes the
	// original pick's occupancy accounting before falling back, so nothing
	// leaks when the pick lands on an ejected backend.
	backend, fellBack := p.ctrl.RouteHashed(hash, key, now)
	if backend < 0 || backend >= len(p.cfg.Backends) {
		p.dropped.Add(1) // whole pool ejected (or policy misbehaved)
		return
	}
	if fellBack {
		p.fallbacks.Add(1)
	}
	// charged tracks whether the policy holds an open-flow debit for
	// `backend`. Fallback and failover targets are never charged (the
	// controller undid the original pick's debit), so the end-of-connection
	// FlowClosed must be skipped for them or occupancy goes negative.
	charged := !fellBack

	server, err := p.dial(p.cfg.Backends[backend], p.cfg.DialTimeout)
	if err != nil {
		p.ctrl.ReportDialError(backend, p.now())
		if charged {
			p.ctrl.FlowClosed(backend, p.now())
			charged = false
		}
		// One-shot failover: retry against the next admitted backend so a
		// connection racing an ejection (or hitting a not-yet-detected
		// failure) is rescued instead of shed. The target is uncharged.
		if alt := p.ctrl.FailoverTarget(backend); alt >= 0 {
			server, err = p.dial(p.cfg.Backends[alt], p.cfg.DialTimeout)
			if err == nil {
				backend = alt
				p.failovers.Add(1)
			} else {
				p.ctrl.ReportDialError(alt, p.now())
			}
		}
		if err != nil {
			p.dialErrors.Add(1) // terminal: no backend accepted the dial
			return
		}
	}
	p.ctrl.ReportDialSuccess(backend)
	defer server.Close()
	p.perBackend[backend].Add(1)
	p.active.Add(1)
	defer p.active.Add(-1)

	p.connMu.Lock()
	p.open[client] = struct{}{}
	p.open[server] = struct{}{}
	p.connMu.Unlock()
	defer func() {
		p.connMu.Lock()
		delete(p.open, client)
		delete(p.open, server)
		p.connMu.Unlock()
	}()
	if p.closed.Load() {
		// Raced Close's force-close sweep: tear down now rather than start
		// relays Close will never see.
		client.Close()
		server.Close()
	}

	done := make(chan struct{}, 2)

	// Response direction: a blind relay. No timestamps feed measurement
	// here — the estimator must work without seeing this traffic, as under
	// DSR. (Idle deadlines are liveness bounds, not measurement.)
	go func() {
		bufp := p.getBuf()
		defer p.putBuf(bufp)
		buf := *bufp
		for {
			p.armIdle(server)
			n, rerr := server.Read(buf)
			if n > 0 {
				if _, werr := client.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				p.reportRelayErr(backend, rerr)
				break
			}
		}
		closeWrite(client)
		done <- struct{}{}
	}()

	// Request direction: every read is a client→server arrival whose
	// timestamp feeds the in-band estimator. Lock-free up to shard
	// striping: no proxy-global mutex is taken here.
	go func() {
		bufp := p.getBuf()
		defer p.putBuf(bufp)
		buf := *bufp
		for {
			p.armIdle(client)
			n, rerr := client.Read(buf)
			if n > 0 {
				p.observe(hash, key, backend)
				if _, werr := server.Write(buf[:n]); werr != nil {
					p.reportRelayErr(backend, werr)
					break
				}
			}
			if rerr != nil {
				break // client-side failure: not the backend's fault
			}
		}
		closeWrite(server)
		done <- struct{}{}
	}()

	<-done
	<-done

	p.flows.ForgetHashed(hash, key)
	if charged {
		p.ctrl.FlowClosed(backend, p.now())
	}
}

// armIdle sets the connection's read deadline IdleTimeout into the future,
// bounding how long a relay direction can sit byteless.
func (p *Proxy) armIdle(c net.Conn) {
	if p.cfg.IdleTimeout > 0 {
		_ = c.SetReadDeadline(time.Now().Add(p.cfg.IdleTimeout))
	}
}

// reportRelayErr forwards an abnormal server-side relay failure to the
// passive detector. Clean EOFs are normal teardown; net.ErrClosed means the
// proxy itself (or the peer goroutine) tore the connection down.
func (p *Proxy) reportRelayErr(backend int, err error) {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || p.closed.Load() {
		return
	}
	p.ctrl.ReportRelayError(backend, p.now())
}

// observe feeds one request-direction read into the flow's estimator shard
// and, when a latency sample pops out, into the controller's matching
// aggregator stripe. Both sides stripe on the same precomputed hash, so a
// relay goroutine touches one shard's cache lines end to end.
func (p *Proxy) observe(hash uint64, key packet.FlowKey, backend int) {
	now := p.now()
	sample, ok := p.flows.ObserveHashed(hash, key, now)
	if ok {
		p.samples.Add(1)
		p.ctrl.ObserveSharded(hash, backend, now, sample)
	}
}

// closeWrite half-closes the write side when the transport supports it,
// propagating EOF to the peer like a forwarded FIN.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}

// probeLoop actively dials each backend roughly every HealthInterval
// (jittered ±10% so many proxies' probes do not synchronize) and flips its
// ejection bit only after HealthFailThreshold consecutive failures or
// HealthRecoverThreshold consecutive successes — one lost SYN no longer
// flaps routing. State changes go to the controller, which republishes the
// routing snapshot immediately — ejections take effect on the next
// accepted connection, not the next control tick.
func (p *Proxy) probeLoop() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fails := make([]int, len(p.cfg.Backends))
	oks := make([]int, len(p.cfg.Backends))
	timer := time.NewTimer(p.jitteredProbePeriod(rng))
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		timer.Reset(p.jitteredProbePeriod(rng))
		for i, addr := range p.cfg.Backends {
			conn, err := p.dial(addr, p.cfg.HealthTimeout)
			if err != nil {
				oks[i] = 0
				if fails[i]++; fails[i] >= p.cfg.HealthFailThreshold && !p.down[i].Load() {
					p.down[i].Store(true)
					p.ctrl.SetEjected(i, true)
				}
				continue
			}
			_ = conn.Close()
			fails[i] = 0
			if oks[i]++; oks[i] >= p.cfg.HealthRecoverThreshold && p.down[i].Load() {
				p.down[i].Store(false)
				p.ctrl.SetEjected(i, false)
			}
		}
	}
}

// jitteredProbePeriod spreads probe rounds over HealthInterval ±10%.
func (p *Proxy) jitteredProbePeriod(rng *rand.Rand) time.Duration {
	base := float64(p.cfg.HealthInterval)
	return time.Duration(base * (0.9 + 0.2*rng.Float64()))
}

// sweepLoop incrementally expires idle flows, one shard per tick, so
// connections that vanished without a clean close (and thus without
// Forget) do not pin estimator state forever.
func (p *Proxy) sweepLoop() {
	t := time.NewTicker(p.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.flows.SweepNext(p.now())
		}
	}
}

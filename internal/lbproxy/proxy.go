// Package lbproxy is the live userspace counterpart of the simulated
// dataplane: a layer-4 TCP load balancer whose measurement pipeline is fed
// exclusively by client→server byte arrivals.
//
// A userspace TCP proxy cannot do true direct server return — it must relay
// response bytes — but the paper's constraint is about what the measurement
// sees, and that is preserved structurally: response-direction relaying
// happens in a plain copy loop with no timestamps taken, while every
// request-direction read feeds the per-flow estimator exactly as the
// simulated LB feeds it per packet. This is the substitution DESIGN.md
// documents for the Cilium/XDP dataplane (repro band: userspace prototype).
//
// # Concurrency model
//
// The data plane and the control plane are split RCU-style around a
// control.Controller, mirroring a per-CPU dataplane feeding one controller:
//
//   - Per-flow estimator state lives in a core.ShardedFlowTable
//     (GOMAXPROCS lock-striped shards by default), so concurrent
//     connections' request-direction reads only contend when their flows
//     hash to the same shard. Each flow's key is hashed exactly once, at
//     accept; the hash is reused for routing, flow-shard selection, and
//     sample aggregation. No global lock is taken on the read path.
//   - Routing reads an immutable control.Snapshot through an atomic
//     pointer: for table-based policies (maglev, latency-aware,
//     proportional) a new connection's pick — including health-eject
//     fallback — is a pure read, no mutex, no channel, zero allocations.
//     Stateful policies (roundrobin, leastconn, p2c) fall back to a mutex
//     around the policy.
//   - Packet-rate latency samples are folded into the Controller's
//     per-shard, cache-line-padded accumulators and merged into the policy
//     once per control tick (Config.ControlInterval). Aggregation is
//     lossless — nothing is shed under load — so routing state lags the
//     freshest sample by at most one control interval.
//   - control.Policy implementations stay single-threaded (their
//     documented contract): the Controller serializes every policy call.
//     Connection-rate calls (FlowClosed, stateful Picks) are applied
//     synchronously under its mutex.
//   - All Stats counters are atomics; Stats() returns a deep copy built
//     from them, never aliasing mutable state.
//   - Idle-flow sweeping uses ShardedFlowTable.SweepNext, one shard per
//     tick, so no sweep ever stalls the whole table.
//
// The DSR constraint is unchanged: response-direction relaying remains
// timestamp-free.
package lbproxy

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"inbandlb/internal/auditlog"
	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/lbproxy/dialpool"
	"inbandlb/internal/packet"
)

// Config parameterizes the proxy.
type Config struct {
	// Backends are the server addresses, in policy backend-index order.
	Backends []string
	// Policy routes new connections; latency-aware policies receive the
	// estimator's samples. Required. The proxy serializes all calls into
	// it (see the package comment), so it needs no internal locking.
	Policy control.Policy
	// FlowTable configures per-connection estimators.
	FlowTable core.FlowTableConfig
	// Shards is the lock-stripe width for both the flow table and the
	// controller's sample aggregator (they stripe on the same flow hash),
	// rounded up to a power of two. Zero defaults to runtime.GOMAXPROCS(0).
	Shards int
	// ControlInterval is the controller tick period: how often aggregated
	// latency samples are merged into the policy and the routing snapshot
	// is republished. It bounds how stale routing can be relative to the
	// newest sample. Zero defaults to 2 ms.
	ControlInterval time.Duration
	// SweepInterval is the period of the incremental idle-flow sweeper
	// (one shard per tick). Zero defaults to 1 s; negative disables it.
	SweepInterval time.Duration
	// DialTimeout bounds backend dials. Defaults to 2 s.
	DialTimeout time.Duration
	// BufferSize is the relay buffer size. Defaults to 32 KiB.
	BufferSize int
	// HealthInterval enables active health probes (TCP dial) at this
	// period, jittered ±10% so probes across instances do not synchronize.
	// Probe results flip ejection only after consecutive-result thresholds
	// (HealthFailThreshold / HealthRecoverThreshold), so one lost SYN does
	// not flap routing. Zero disables probing — with passive detection
	// enabled (Detector) probes are a backstop, not the primary signal.
	HealthInterval time.Duration
	// HealthTimeout bounds each probe dial. Defaults to min(1s,
	// HealthInterval).
	HealthTimeout time.Duration
	// HealthFailThreshold is how many consecutive probe failures eject a
	// backend; HealthRecoverThreshold how many consecutive successes
	// readmit it. Defaults 3 and 2.
	HealthFailThreshold    int
	HealthRecoverThreshold int
	// Detector configures passive in-band failure detection in the
	// controller: dial errors, relay resets, and per-tick latency
	// aggregates eject without waiting for a probe, and recovery re-admits
	// through half-open trials and slow-start. Zero value disables it.
	Detector control.DetectorConfig
	// Dial overrides the backend dial function (net.DialTimeout on "tcp"
	// by default). Tests and chaos harnesses inject faults.ChaosDialer
	// here; it also carries health-probe dials so the same fault schedule
	// governs both.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// IdleTimeout bounds how long a relay direction may sit idle (no bytes)
	// before the connection is torn down, so a blackholed backend cannot
	// pin goroutines forever. A server-side idle expiry is reported to the
	// passive detector as a relay failure. Zero disables deadlines.
	IdleTimeout time.Duration
	// DrainTimeout is the grace period Close gives in-flight relays before
	// force-closing them. Zero force-closes immediately (the legacy
	// behavior).
	DrainTimeout time.Duration
	// Acceptors is the number of parallel accept loops. On Linux each loop
	// gets its own SO_REUSEPORT listener socket, so the kernel hashes
	// incoming SYNs across independent accept queues; elsewhere the loops
	// share one listener. The acceptor index doubles as the connection's
	// dial-pool stripe, keeping a connection's accept→checkout→checkin
	// path on one stripe's cache lines. Zero or 1 means the historical
	// single-acceptor, plain-Listen behavior.
	Acceptors int
	// Splice enables the zero-copy splice(2) relay on Linux: response
	// bytes (and request bytes after the first-chunk observation) move
	// socket→pipe→socket without entering userspace. Non-TCP connections,
	// non-Linux builds, and kernels that refuse splice fall back to the
	// pooled-buffer copy path transparently. Estimator semantics are
	// unchanged — every request-direction chunk arrival is still
	// timestamped, it just is not copied.
	Splice bool
	// Netpoll enables the event-driven dataplane on Linux: one epoll
	// readiness loop per acceptor shard drives every relayed connection as
	// a compact state machine (O(shards) goroutines instead of O(2·conns)),
	// with idle/drain deadlines on a per-shard timing wheel instead of
	// per-conn SetDeadline. Non-Linux builds, kernels without epoll
	// (latched on ENOSYS), and connections without raw-fd access (chaos
	// wrappers, test pipes) fall back to the goroutine-per-connection path
	// transparently. Estimator semantics are unchanged: the first request
	// chunk stays in userspace and every request-direction readiness event
	// is observed exactly as a Read on the goroutine path would be.
	Netpoll bool
	// PoolIdle enables backend connection pooling when > 0: up to PoolIdle
	// idle connections are kept per backend (probed live at checkout) so a
	// client connection does not always pay a fresh dial. Zero disables
	// pooling, preserving the historical conn-per-client behavior,
	// including immediate FIN propagation to the backend on client EOF.
	PoolIdle int
	// PoolMaxAge evicts pooled connections this long after they first
	// entered the pool. Zero means no age cap.
	PoolMaxAge time.Duration
	// PoolQuiesce is the response-direction silence window after a clean
	// client EOF that marks a pooled exchange as over: any response byte
	// re-arms it, a full window of silence recycles the backend connection
	// into the pool. It trades a small tail latency on connection teardown
	// for dial elimination; clients that half-close and then expect
	// responses slower than this window should not enable pooling.
	// Defaults to 2 ms when pooling is enabled.
	PoolQuiesce time.Duration
	// CongestionSignals enables live transport-distress sampling on Linux:
	// every relayed backend connection's TCP_INFO is polled on a fixed
	// cadence and retransmission growth is fed to the controller's
	// congestion channel (the same one the simulator's packet tracker
	// feeds), so a congested backend can be weighed down or ejected before
	// its latency median moves. Arm the detector thresholds via
	// Detector.CongestionPerTick et al.; sampling without them still
	// surfaces counters in Stats. No-op off Linux and on kernels where
	// TCP_INFO fails (latched, like splice).
	CongestionSignals bool
	// CongestionSampleInterval is the TCP_INFO polling cadence (default
	// 25 ms — one getsockopt per backend conn per tick, far below the
	// distress timescales the detector integrates over).
	CongestionSampleInterval time.Duration
	// Audit receives every control-plane decision (snapshot publishes,
	// weight changes, detector transitions, manual flips, config reloads)
	// as hash-chained records. Use an auditlog.Log for the production
	// async sink; the admin handler's /decisions endpoint reads its tail.
	// Nil disables decision auditing.
	Audit auditlog.Sink
}

// Stats are cumulative proxy counters. Every accepted connection ends in
// exactly one of three buckets — relayed through some backend
// (PerBackend), failed every dial attempt (DialErrors), or dropped for
// lack of any admitted backend (Dropped) — so the accounting identity
//
//	Accepted == sum(PerBackend) + DialErrors + Dropped
//
// holds once in-flight handlers settle (always after Close).
type Stats struct {
	Accepted uint64
	Active   int64
	// DialErrors counts connections that failed to reach any backend: the
	// routed dial failed and the one-shot failover either had no target or
	// failed too. A connection saved by failover is not a DialError — it
	// lands in PerBackend (for the rescue backend) and in Failovers.
	DialErrors uint64
	// Dropped counts connections discarded because no backend admitted
	// any traffic (whole pool ejected).
	Dropped uint64
	// Samples counts estimator outputs; SamplesDelivered those merged into
	// the policy by controller ticks. SamplesDropped is always zero —
	// shard aggregation is lossless — and is kept so the accounting
	// identity Samples == SamplesDelivered + SamplesDropped (which holds
	// after Close; while relays are hot, up to one tick's worth of samples
	// is in flight in the aggregator) reads the same as before.
	Samples          uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	Fallbacks        uint64   // connections rerouted away from an ejected backend
	Failovers        uint64   // connections rescued by the post-dial-error retry
	PerBackend       []uint64 // connections routed per backend
	Down             []bool   // per backend: admits no traffic (probe or passive)
	Health           []string // per backend: passive-detector state name
	// Relay syscall accounting (one counter bump per kernel call): reads
	// and writes on the userspace copy path, splice(2) calls on the
	// zero-copy path (readiness probes included). strace without strace —
	// benchmarks report these per op.
	RelayReads, RelayWrites, RelaySplices uint64
	// Dial-pool counters (all zero with pooling disabled): checkout
	// hits/misses, conns the checkout probe found dead, pooled conns that
	// failed their first write (accounted as dial failures), and conns
	// recycled back into the pool after a quiesced exchange.
	PoolHits, PoolMisses, PoolDead, PoolFirstWriteFails, PoolRecycled uint64
	// Congestion-signal counters (zero unless Config.CongestionSignals):
	// CongSamples counts successful TCP_INFO reads, CongRetrans the total
	// retransmitted segments attributed to backends through them.
	CongSamples, CongRetrans uint64
	// Netpoll holds per-shard poller counters when the event-driven
	// dataplane is active; nil otherwise.
	Netpoll []NetpollShardStats
}

// NetpollShardStats are one poller shard's counters: epoll_wait wakeups,
// timing-wheel fires, and currently registered fds.
type NetpollShardStats struct {
	Wakeups       uint64 `json:"wakeups"`
	TimerFires    uint64 `json:"timer_fires"`
	RegisteredFDs int64  `json:"registered_fds"`
}

// Proxy is a running load balancer instance.
type Proxy struct {
	cfg       Config
	listeners []net.Listener // one per SO_REUSEPORT shard (len 1 otherwise)

	flows *core.ShardedFlowTable
	ctrl  *control.Controller
	pool  *dialpool.Pool // nil unless Config.PoolIdle > 0
	np    []*npShard     // event-loop shards; nil unless Config.Netpoll works here
	start time.Time

	// bufs recycles relay buffers (up to two per connection,
	// Config.BufferSize each) so connection churn does not make the
	// allocator the bottleneck. It holds *[]byte to keep Put/Get
	// themselves allocation-free. Relays on the splice path never touch it.
	bufs sync.Pool

	accepted   atomic.Uint64
	active     atomic.Int64
	dialErrors atomic.Uint64
	dropped    atomic.Uint64
	samples    atomic.Uint64
	fallbacks  atomic.Uint64
	failovers  atomic.Uint64
	perBackend []atomic.Uint64
	down       []atomic.Bool // probe layer's own view (streak bookkeeping)
	stop       chan struct{}

	// Syscall-diet accounting; see Stats.RelayReads et al.
	sysReads            atomic.Uint64
	sysWrites           atomic.Uint64
	sysSplices          atomic.Uint64
	poolFirstWriteFails atomic.Uint64
	poolRecycled        atomic.Uint64

	// Congestion-signal registry (nil unless Config.CongestionSignals):
	// live backend conns sampled for TCP_INFO by congLoop.
	congMu      sync.Mutex
	cong        map[net.Conn]*congEntry
	congSamples atomic.Uint64
	congRetrans atomic.Uint64

	closed atomic.Bool
	wg     sync.WaitGroup
	connMu sync.Mutex
	open   map[net.Conn]struct{}
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Policy == nil {
		return nil, errors.New("lbproxy: policy required")
	}
	if len(cfg.Backends) != cfg.Policy.NumBackends() {
		return nil, fmt.Errorf("lbproxy: %d backends for %d policy slots",
			len(cfg.Backends), cfg.Policy.NumBackends())
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 32 << 10
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.HealthInterval > 0 && cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
		if cfg.HealthTimeout > cfg.HealthInterval {
			cfg.HealthTimeout = cfg.HealthInterval
		}
	}
	if cfg.HealthFailThreshold <= 0 {
		cfg.HealthFailThreshold = 3
	}
	if cfg.HealthRecoverThreshold <= 0 {
		cfg.HealthRecoverThreshold = 2
	}
	if cfg.Acceptors < 1 {
		cfg.Acceptors = 1
	}
	if cfg.PoolIdle > 0 && cfg.PoolQuiesce <= 0 {
		cfg.PoolQuiesce = 2 * time.Millisecond
	}
	if cfg.CongestionSignals && cfg.CongestionSampleInterval <= 0 {
		cfg.CongestionSampleInterval = 25 * time.Millisecond
	}
	flows, err := core.NewShardedFlowTable(cfg.FlowTable, cfg.Shards)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:        cfg,
		flows:      flows,
		start:      time.Now(),
		perBackend: make([]atomic.Uint64, len(cfg.Backends)),
		down:       make([]atomic.Bool, len(cfg.Backends)),
		stop:       make(chan struct{}),
		open:       make(map[net.Conn]struct{}),
	}
	if cfg.CongestionSignals {
		p.cong = make(map[net.Conn]*congEntry)
	}
	// The controller stripes its sample aggregator like the flow table and
	// ticks on the proxy's monotonic clock, so sample timestamps and merge
	// timestamps share a timebase.
	p.ctrl = control.NewController(cfg.Policy, control.ControllerConfig{
		Shards:   flows.Shards(),
		Interval: cfg.ControlInterval,
		Now:      p.now,
		Detector: cfg.Detector,
		Audit:    cfg.Audit,
	})
	// The pool is keyed to this proxy's BufferSize: every buffer it hands
	// out has exactly that capacity, so relays never re-slice.
	size := cfg.BufferSize
	p.bufs.New = func() any {
		b := make([]byte, size)
		return &b
	}
	if cfg.PoolIdle > 0 {
		p.pool = dialpool.New(dialpool.Config{
			Backends:          len(cfg.Backends),
			Stripes:           cfg.Acceptors,
			MaxIdlePerBackend: cfg.PoolIdle,
			MaxAge:            cfg.PoolMaxAge,
		})
	}
	if cfg.Netpoll {
		p.netpollInit() // leaves p.np nil (goroutine dataplane) if epoll is unusable
	}
	return p, nil
}

// poolQuiesce is the response-silence window that closes a pooled
// exchange; see Config.PoolQuiesce.
func (p *Proxy) poolQuiesce() time.Duration { return p.cfg.PoolQuiesce }

// getBuf takes a relay buffer from the pool (allocating only when the pool
// is empty); putBuf returns it for the next connection.
func (p *Proxy) getBuf() *[]byte  { return p.bufs.Get().(*[]byte) }
func (p *Proxy) putBuf(b *[]byte) { p.bufs.Put(b) }

// Stats returns a snapshot of the counters. The snapshot is a deep copy
// assembled from atomics; it never aliases the proxy's mutable state, so
// callers may read it while accepts, relays, and health probes proceed.
func (p *Proxy) Stats() Stats {
	st := Stats{
		Accepted:         p.accepted.Load(),
		Active:           p.active.Load(),
		DialErrors:       p.dialErrors.Load(),
		Dropped:          p.dropped.Load(),
		Samples:          p.samples.Load(),
		SamplesDelivered: p.ctrl.Delivered(),
		SamplesDropped:   p.ctrl.Dropped(),
		Fallbacks:        p.fallbacks.Load(),
		Failovers:        p.failovers.Load(),
		PerBackend:       make([]uint64, len(p.perBackend)),
		Down:             make([]bool, len(p.perBackend)),
		Health:           make([]string, len(p.perBackend)),

		RelayReads:          p.sysReads.Load(),
		RelayWrites:         p.sysWrites.Load(),
		RelaySplices:        p.sysSplices.Load(),
		PoolFirstWriteFails: p.poolFirstWriteFails.Load(),
		PoolRecycled:        p.poolRecycled.Load(),
		CongSamples:         p.congSamples.Load(),
		CongRetrans:         p.congRetrans.Load(),
		Netpoll:             p.netpollStats(),
	}
	if p.pool != nil {
		ps := p.pool.Stats()
		st.PoolHits = ps.Hits
		st.PoolMisses = ps.Misses
		st.PoolDead = ps.DeadOnCheckout
	}
	for i := range p.perBackend {
		st.PerBackend[i] = p.perBackend[i].Load()
		// Down reflects what routing sees — manual probe vetoes AND
		// passive ejections — not just the probe loop's own bookkeeping.
		st.Down[i] = p.ctrl.Ejected(i)
		st.Health[i] = p.ctrl.HealthState(i).String()
	}
	return st
}

// dial opens one backend connection through the configured dial hook.
func (p *Proxy) dial(addr string, timeout time.Duration) (net.Conn, error) {
	if p.cfg.Dial != nil {
		return p.cfg.Dial(addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// Listen binds addr — Config.Acceptors listener shards on Linux (one
// SO_REUSEPORT socket each), a single listener elsewhere.
func (p *Proxy) Listen(addr string) error {
	ls, err := listenShards(addr, p.cfg.Acceptors)
	if err != nil {
		return err
	}
	p.listeners = ls
	return nil
}

// Addr returns the bound address (nil before Listen). All listener shards
// share one address.
func (p *Proxy) Addr() net.Addr {
	if len(p.listeners) == 0 {
		return nil
	}
	return p.listeners[0].Addr()
}

// Serve accepts and relays connections until Close, running
// Config.Acceptors accept loops in parallel. Each loop owns one listener
// shard (or a share of the single fallback listener) and passes its index
// down as the connection's dial-pool stripe.
func (p *Proxy) Serve() error {
	if len(p.listeners) == 0 {
		return errors.New("lbproxy: Serve before Listen")
	}
	p.ctrl.Start()
	if p.cfg.HealthInterval > 0 {
		go p.probeLoop()
	}
	if p.cfg.SweepInterval > 0 {
		go p.sweepLoop()
	}
	if p.cong != nil {
		go p.congLoop()
	}
	n := p.cfg.Acceptors
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			errCh <- p.acceptLoop(p.listeners[i%len(p.listeners)], i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil && first == nil {
			first = err
			// One shard failing takes the proxy down coherently rather
			// than serving on a subset of accept queues.
			for _, l := range p.listeners {
				_ = l.Close()
			}
		}
	}
	return first
}

// acceptLoop accepts from one listener shard until it closes.
func (p *Proxy) acceptLoop(lis net.Listener, idx int) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn, idx)
		}()
	}
}

// ListenAndServe combines Listen and Serve.
func (p *Proxy) ListenAndServe(addr string) error {
	if err := p.Listen(addr); err != nil {
		return err
	}
	return p.Serve()
}

// Close stops the proxy: it stops accepting, gives in-flight relays up to
// Config.DrainTimeout to finish on their own (graceful drain), force-closes
// whatever remains, and runs a final controller tick so every aggregated
// latency sample is merged into the policy (post-Close Stats satisfy
// Samples == SamplesDelivered + SamplesDropped and the Accepted identity).
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		p.ctrl.Close() // idempotent; runs the final flush tick
		return nil
	}
	close(p.stop)
	var err error
	for _, l := range p.listeners {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if p.cfg.DrainTimeout > 0 {
		drained := make(chan struct{})
		go func() {
			p.wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(p.cfg.DrainTimeout):
		}
	}
	p.connMu.Lock()
	for c := range p.open {
		_ = c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	// Netpoll relays are owned by the pollers, not wg: every handoff Post
	// happened-before wg.Wait returned, so stopping the pollers here
	// finalizes every relay (idle ones included) with all samples flushed
	// into the aggregator before the controller's final tick below.
	p.netpollStop()
	if p.pool != nil {
		p.pool.Close()
	}
	p.ctrl.Close()
	return err
}

// now returns monotonic time since proxy start, the estimator clock.
func (p *Proxy) now() time.Duration { return time.Since(p.start) }

// flowKeyFor derives the estimator flow key from the connection 4-tuple.
func flowKeyFor(conn net.Conn) packet.FlowKey {
	key := packet.FlowKey{Proto: packet.ProtoTCP}
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		key.SrcIP = ap.Addr().Unmap().As4()
		key.SrcPort = ap.Port()
	}
	if ap, err := netip.ParseAddrPort(conn.LocalAddr().String()); err == nil {
		key.DstIP = ap.Addr().Unmap().As4()
		key.DstPort = ap.Port()
	}
	return key
}

// dialFailover handles a failed attempt to reach `backend` — a refused
// dial, or a pooled connection dying on first write: it reports the
// failure, undoes the policy's open-flow debit, and makes the existing
// one-shot failover attempt against the next admitted backend. Returns
// the rescue connection and its backend, or (nil, -1) when the
// connection is terminally unreachable (the caller counts a DialError).
func (p *Proxy) dialFailover(backend int, charged *bool) (net.Conn, int) {
	p.ctrl.ReportDialError(backend, p.now())
	if *charged {
		p.ctrl.FlowClosed(backend, p.now())
		*charged = false
	}
	if alt := p.ctrl.FailoverTarget(backend); alt >= 0 {
		server, err := p.dial(p.cfg.Backends[alt], p.cfg.DialTimeout)
		if err == nil {
			p.failovers.Add(1)
			return server, alt
		}
		p.ctrl.ReportDialError(alt, p.now())
	}
	return nil, -1
}

func (p *Proxy) handle(client net.Conn, acceptor int) {
	// handedOff flips when the connection pair moves to a poller shard: the
	// npRelay owns both conns and all remaining accounting from then on, so
	// this goroutine's cleanup must not touch them.
	handedOff := false
	defer func() {
		if handedOff {
			return
		}
		client.Close()
		p.connMu.Lock()
		delete(p.open, client)
		p.connMu.Unlock()
	}()
	// Register the client with the force-close sweep before anything that
	// can block on it (the pooled path reads the first chunk below).
	p.connMu.Lock()
	p.open[client] = struct{}{}
	p.connMu.Unlock()
	if p.closed.Load() {
		// Raced Close's force-close sweep: tear down now rather than start
		// work Close will never see.
		client.Close()
	}

	key := flowKeyFor(client)
	hash := key.Hash() // hashed once; reused for routing, sharding, sampling
	now := p.now()

	// Route applies health ejection inline: for table-based policies it is
	// a pure snapshot read; for stateful ones the controller undoes the
	// original pick's occupancy accounting before falling back, so nothing
	// leaks when the pick lands on an ejected backend.
	backend, fellBack := p.ctrl.RouteHashed(hash, key, now)
	if backend < 0 || backend >= len(p.cfg.Backends) {
		p.dropped.Add(1) // whole pool ejected (or policy misbehaved)
		return
	}
	if fellBack {
		p.fallbacks.Add(1)
	}
	// charged tracks whether the policy holds an open-flow debit for
	// `backend`. Fallback and failover targets are never charged (the
	// controller undid the original pick's debit), so the end-of-connection
	// FlowClosed must be skipped for them or occupancy goes negative.
	charged := !fellBack

	// Acquire a backend connection: pooled checkout first (probed live at
	// checkout), otherwise a fresh dial with the one-shot failover.
	var (
		server   net.Conn
		born     time.Time
		fromPool bool
	)
	if p.pool != nil {
		server, born, fromPool = p.pool.Get(backend, acceptor)
	}
	if server == nil {
		var err error
		server, err = p.dial(p.cfg.Backends[backend], p.cfg.DialTimeout)
		if err != nil {
			server, backend = p.dialFailover(backend, &charged)
			if server == nil {
				p.dialErrors.Add(1) // terminal: no backend accepted the dial
				return
			}
		}
	}
	p.connMu.Lock()
	p.open[server] = struct{}{}
	p.connMu.Unlock()
	if p.closed.Load() {
		server.Close()
	}
	// Congestion sampling follows the backend connection from here. The
	// netpoll path has no teardown hook in this goroutine; its entries
	// leave the registry when sampling the closed fd fails.
	p.congRegister(server, backend, hash)

	// Event-driven dataplane: hand the pair to this acceptor's poller shard.
	// The handoff point is before pooled validation — the npRelay runs the
	// validation write itself when the first chunk arrives, so until then the
	// connection pins no goroutine at all.
	if p.netpollHandoff(client, server, backend, acceptor, hash, key, charged, fromPool, born) {
		handedOff = true
		return
	}

	// Pooled-connection validation: relay the first client chunk through
	// userspace before committing counters. The checkout probe proved the
	// socket open, but the backend can die between checkout and first use
	// — a pooled connection failing its first write here is accounted
	// exactly like a failed dial (ReportDialError, fresh redial, then the
	// failover path), so the
	//
	//	Accepted == sum(PerBackend) + DialErrors + Dropped
	//
	// identity holds with the dead pooled conn never reaching PerBackend.
	var (
		pending   []byte // first chunk read but not yet written
		preBuf    *[]byte
		firstDone bool  // first chunk fully relayed (observed + written)
		firstErr  error // terminal result of the validation read, if any
	)
	if fromPool {
		preBuf = p.getBuf()
		defer p.putBuf(preBuf)
		p.armIdle(client)
		n, rerr := client.Read(*preBuf)
		p.sysReads.Add(1)
		firstErr = rerr
		if n > 0 {
			pending = (*preBuf)[:n]
			ts := p.now() // arrival time, attributed after the write settles
			p.sysWrites.Add(1)
			if _, werr := server.Write(pending); werr != nil {
				p.connMu.Lock()
				delete(p.open, server)
				p.connMu.Unlock()
				p.congFinal(server)
				_ = server.Close()
				p.poolFirstWriteFails.Add(1)
				p.ctrl.ReportDialError(backend, ts)
				fromPool, born = false, time.Time{}
				// One fresh dial to the same backend — the pooled conn's
				// death is often stale news — then the failover path.
				fresh, derr := p.dial(p.cfg.Backends[backend], p.cfg.DialTimeout)
				if derr == nil {
					server = fresh
				} else {
					server, backend = p.dialFailover(backend, &charged)
					if server == nil {
						p.dialErrors.Add(1)
						return
					}
				}
				p.connMu.Lock()
				p.open[server] = struct{}{}
				p.connMu.Unlock()
				if p.closed.Load() {
					server.Close()
				}
				p.congRegister(server, backend, hash)
				// The swapped connection still owes the first chunk: the
				// request loop writes `pending` before relaying.
			} else {
				firstDone = true
				pending = nil
			}
			p.observeAt(hash, key, backend, ts)
		}
	}

	p.ctrl.ReportDialSuccess(backend)
	p.perBackend[backend].Add(1)
	p.active.Add(1)
	defer p.active.Add(-1)
	defer func() {
		p.connMu.Lock()
		delete(p.open, server)
		p.connMu.Unlock()
	}()

	st := &relay{p: p, client: client, server: server, backend: backend, hash: hash, key: key}

	// Response direction: a blind relay (spliced when possible). No
	// timestamps feed measurement here — the estimator must work without
	// seeing this traffic, as under DSR. (Idle deadlines are liveness
	// bounds, not measurement.)
	respDone := make(chan struct{})
	go func() {
		st.runResponse()
		close(respDone)
	}()

	// Request direction, in this goroutine: every chunk arrival is a
	// client→server event whose timestamp feeds the in-band estimator.
	// Lock-free up to shard striping: no proxy-global mutex is taken here.
	st.runRequest(firstDone, pending, firstErr)
	<-respDone

	// Final congestion sample before the conn can be recycled: retrans
	// growth in the last sampling window is charged to *this* exchange's
	// flow, and a pooled conn re-enters the registry fresh on checkout.
	p.congFinal(server)
	p.flows.ForgetHashed(hash, key)
	if charged {
		p.ctrl.FlowClosed(backend, p.now())
	}
	// Retire or recycle the backend connection. Recycling hands it to the
	// pool open — the next checkout's probe re-verifies it.
	if st.recycled.Load() && !st.aborted.Load() && !p.closed.Load() &&
		p.pool != nil && p.pool.Put(backend, acceptor, server, born) {
		p.poolRecycled.Add(1)
	} else {
		_ = server.Close()
	}
}

// armIdle sets the connection's read deadline IdleTimeout into the future,
// bounding how long a relay direction can sit byteless.
func (p *Proxy) armIdle(c net.Conn) {
	if p.cfg.IdleTimeout > 0 {
		_ = c.SetReadDeadline(time.Now().Add(p.cfg.IdleTimeout))
	}
}

// reportRelayErr forwards an abnormal server-side relay failure to the
// passive detector. Clean EOFs are normal teardown; net.ErrClosed means the
// proxy itself (or the peer goroutine) tore the connection down.
func (p *Proxy) reportRelayErr(backend int, err error) {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || p.closed.Load() {
		return
	}
	p.ctrl.ReportRelayError(backend, p.now())
}

// observe feeds one request-direction chunk arrival into the flow's
// estimator shard and, when a latency sample pops out, into the
// controller's matching aggregator stripe. Both sides stripe on the same
// precomputed hash, so a relay goroutine touches one shard's cache lines
// end to end. On the splice path this fires once per readiness event —
// the same granularity as one Read on the copy path — so the estimator
// sees identical arrival timestamps without the payload ever entering
// userspace.
func (p *Proxy) observe(hash uint64, key packet.FlowKey, backend int) {
	p.observeAt(hash, key, backend, p.now())
}

// observeAt is observe with an explicit arrival time: the pooled
// validation phase timestamps the first chunk when it is read but
// attributes it only after the write settles (the backend may change if
// the pooled connection dies on first write).
func (p *Proxy) observeAt(hash uint64, key packet.FlowKey, backend int, now time.Duration) {
	sample, ok := p.flows.ObserveHashed(hash, key, now)
	if ok {
		p.samples.Add(1)
		p.ctrl.ObserveSharded(hash, backend, now, sample)
	}
}

// closeWrite half-closes the write side when the transport supports it,
// propagating EOF to the peer like a forwarded FIN.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}

// probeLoop actively dials each backend roughly every HealthInterval
// (jittered ±10% so many proxies' probes do not synchronize) and flips its
// ejection bit only after HealthFailThreshold consecutive failures or
// HealthRecoverThreshold consecutive successes — one lost SYN no longer
// flaps routing. State changes go to the controller, which republishes the
// routing snapshot immediately — ejections take effect on the next
// accepted connection, not the next control tick.
func (p *Proxy) probeLoop() {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	fails := make([]int, len(p.cfg.Backends))
	oks := make([]int, len(p.cfg.Backends))
	timer := time.NewTimer(p.jitteredProbePeriod(rng))
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		timer.Reset(p.jitteredProbePeriod(rng))
		for i, addr := range p.cfg.Backends {
			conn, err := p.dial(addr, p.cfg.HealthTimeout)
			if err != nil {
				oks[i] = 0
				if fails[i]++; fails[i] >= p.cfg.HealthFailThreshold && !p.down[i].Load() {
					p.down[i].Store(true)
					p.ctrl.SetEjected(i, true)
				}
				continue
			}
			_ = conn.Close()
			fails[i] = 0
			if oks[i]++; oks[i] >= p.cfg.HealthRecoverThreshold && p.down[i].Load() {
				p.down[i].Store(false)
				p.ctrl.SetEjected(i, false)
			}
		}
	}
}

// jitteredProbePeriod spreads probe rounds over HealthInterval ±10%.
func (p *Proxy) jitteredProbePeriod(rng *rand.Rand) time.Duration {
	base := float64(p.cfg.HealthInterval)
	return time.Duration(base * (0.9 + 0.2*rng.Float64()))
}

// sweepLoop incrementally expires idle flows, one shard per tick, so
// connections that vanished without a clean close (and thus without
// Forget) do not pin estimator state forever.
func (p *Proxy) sweepLoop() {
	t := time.NewTicker(p.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.flows.SweepNext(p.now())
			if p.pool != nil {
				p.pool.Sweep() // one stripe per tick, like the flow table
			}
		}
	}
}

// Package lbproxy is the live userspace counterpart of the simulated
// dataplane: a layer-4 TCP load balancer whose measurement pipeline is fed
// exclusively by client→server byte arrivals.
//
// A userspace TCP proxy cannot do true direct server return — it must relay
// response bytes — but the paper's constraint is about what the measurement
// sees, and that is preserved structurally: response-direction relaying
// happens in a plain copy loop with no timestamps taken, while every
// request-direction read feeds the per-flow estimator exactly as the
// simulated LB feeds it per packet. This is the substitution DESIGN.md
// documents for the Cilium/XDP dataplane (repro band: userspace prototype).
//
// # Concurrency model
//
// The data plane and the control plane are split RCU-style around a
// control.Controller, mirroring a per-CPU dataplane feeding one controller:
//
//   - Per-flow estimator state lives in a core.ShardedFlowTable
//     (GOMAXPROCS lock-striped shards by default), so concurrent
//     connections' request-direction reads only contend when their flows
//     hash to the same shard. Each flow's key is hashed exactly once, at
//     accept; the hash is reused for routing, flow-shard selection, and
//     sample aggregation. No global lock is taken on the read path.
//   - Routing reads an immutable control.Snapshot through an atomic
//     pointer: for table-based policies (maglev, latency-aware,
//     proportional) a new connection's pick — including health-eject
//     fallback — is a pure read, no mutex, no channel, zero allocations.
//     Stateful policies (roundrobin, leastconn, p2c) fall back to a mutex
//     around the policy.
//   - Packet-rate latency samples are folded into the Controller's
//     per-shard, cache-line-padded accumulators and merged into the policy
//     once per control tick (Config.ControlInterval). Aggregation is
//     lossless — nothing is shed under load — so routing state lags the
//     freshest sample by at most one control interval.
//   - control.Policy implementations stay single-threaded (their
//     documented contract): the Controller serializes every policy call.
//     Connection-rate calls (FlowClosed, stateful Picks) are applied
//     synchronously under its mutex.
//   - All Stats counters are atomics; Stats() returns a deep copy built
//     from them, never aliasing mutable state.
//   - Idle-flow sweeping uses ShardedFlowTable.SweepNext, one shard per
//     tick, so no sweep ever stalls the whole table.
//
// The DSR constraint is unchanged: response-direction relaying remains
// timestamp-free.
package lbproxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/packet"
)

// Config parameterizes the proxy.
type Config struct {
	// Backends are the server addresses, in policy backend-index order.
	Backends []string
	// Policy routes new connections; latency-aware policies receive the
	// estimator's samples. Required. The proxy serializes all calls into
	// it (see the package comment), so it needs no internal locking.
	Policy control.Policy
	// FlowTable configures per-connection estimators.
	FlowTable core.FlowTableConfig
	// Shards is the lock-stripe width for both the flow table and the
	// controller's sample aggregator (they stripe on the same flow hash),
	// rounded up to a power of two. Zero defaults to runtime.GOMAXPROCS(0).
	Shards int
	// SampleBuffer is deprecated and ignored: sample aggregation is
	// lossless and unbounded-free (fixed per-shard cells), so there is no
	// queue to size and nothing is ever dropped.
	SampleBuffer int
	// ControlInterval is the controller tick period: how often aggregated
	// latency samples are merged into the policy and the routing snapshot
	// is republished. It bounds how stale routing can be relative to the
	// newest sample. Zero defaults to 2 ms.
	ControlInterval time.Duration
	// SweepInterval is the period of the incremental idle-flow sweeper
	// (one shard per tick). Zero defaults to 1 s; negative disables it.
	SweepInterval time.Duration
	// DialTimeout bounds backend dials. Defaults to 2 s.
	DialTimeout time.Duration
	// BufferSize is the relay buffer size. Defaults to 32 KiB.
	BufferSize int
	// HealthInterval enables active health probes (TCP dial) at this
	// period; backends failing a probe are ejected from routing until a
	// probe succeeds again. Zero disables probing.
	HealthInterval time.Duration
	// HealthTimeout bounds each probe dial. Defaults to min(1s,
	// HealthInterval).
	HealthTimeout time.Duration
}

// Stats are cumulative proxy counters. Every accepted connection either
// dial-errors or is counted in exactly one PerBackend slot, so
// Accepted == sum(PerBackend) + DialErrors + dropped-for-lack-of-backend.
type Stats struct {
	Accepted   uint64
	Active     int64
	DialErrors uint64
	// Samples counts estimator outputs; SamplesDelivered those merged into
	// the policy by controller ticks. SamplesDropped is always zero —
	// shard aggregation is lossless — and is kept so the accounting
	// identity Samples == SamplesDelivered + SamplesDropped (which holds
	// after Close; while relays are hot, up to one tick's worth of samples
	// is in flight in the aggregator) reads the same as before.
	Samples          uint64
	SamplesDelivered uint64
	SamplesDropped   uint64
	Fallbacks        uint64   // connections rerouted away from an ejected backend
	PerBackend       []uint64 // connections routed per backend
	Down             []bool   // health state per backend (false = healthy)
}

// Proxy is a running load balancer instance.
type Proxy struct {
	cfg Config
	lis net.Listener

	flows *core.ShardedFlowTable
	ctrl  *control.Controller
	start time.Time

	// bufs recycles relay buffers (two per connection, Config.BufferSize
	// each) so connection churn does not make the allocator the
	// bottleneck. It holds *[]byte to keep Put/Get themselves
	// allocation-free.
	bufs sync.Pool

	accepted   atomic.Uint64
	active     atomic.Int64
	dialErrors atomic.Uint64
	samples    atomic.Uint64
	fallbacks  atomic.Uint64
	perBackend []atomic.Uint64
	down       []atomic.Bool
	stop       chan struct{}

	closed atomic.Bool
	wg     sync.WaitGroup
	connMu sync.Mutex
	open   map[net.Conn]struct{}
}

// New creates a proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Policy == nil {
		return nil, errors.New("lbproxy: policy required")
	}
	if len(cfg.Backends) != cfg.Policy.NumBackends() {
		return nil, fmt.Errorf("lbproxy: %d backends for %d policy slots",
			len(cfg.Backends), cfg.Policy.NumBackends())
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 32 << 10
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Second
	}
	if cfg.HealthInterval > 0 && cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
		if cfg.HealthTimeout > cfg.HealthInterval {
			cfg.HealthTimeout = cfg.HealthInterval
		}
	}
	flows, err := core.NewShardedFlowTable(cfg.FlowTable, cfg.Shards)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:        cfg,
		flows:      flows,
		start:      time.Now(),
		perBackend: make([]atomic.Uint64, len(cfg.Backends)),
		down:       make([]atomic.Bool, len(cfg.Backends)),
		stop:       make(chan struct{}),
		open:       make(map[net.Conn]struct{}),
	}
	// The controller stripes its sample aggregator like the flow table and
	// ticks on the proxy's monotonic clock, so sample timestamps and merge
	// timestamps share a timebase.
	p.ctrl = control.NewController(cfg.Policy, control.ControllerConfig{
		Shards:   flows.Shards(),
		Interval: cfg.ControlInterval,
		Now:      p.now,
	})
	// The pool is keyed to this proxy's BufferSize: every buffer it hands
	// out has exactly that capacity, so relays never re-slice.
	size := cfg.BufferSize
	p.bufs.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p, nil
}

// getBuf takes a relay buffer from the pool (allocating only when the pool
// is empty); putBuf returns it for the next connection.
func (p *Proxy) getBuf() *[]byte  { return p.bufs.Get().(*[]byte) }
func (p *Proxy) putBuf(b *[]byte) { p.bufs.Put(b) }

// Stats returns a snapshot of the counters. The snapshot is a deep copy
// assembled from atomics; it never aliases the proxy's mutable state, so
// callers may read it while accepts, relays, and health probes proceed.
func (p *Proxy) Stats() Stats {
	st := Stats{
		Accepted:         p.accepted.Load(),
		Active:           p.active.Load(),
		DialErrors:       p.dialErrors.Load(),
		Samples:          p.samples.Load(),
		SamplesDelivered: p.ctrl.Delivered(),
		SamplesDropped:   p.ctrl.Dropped(),
		Fallbacks:        p.fallbacks.Load(),
		PerBackend:       make([]uint64, len(p.perBackend)),
		Down:             make([]bool, len(p.down)),
	}
	for i := range p.perBackend {
		st.PerBackend[i] = p.perBackend[i].Load()
		st.Down[i] = p.down[i].Load()
	}
	return st
}

// Listen binds addr.
func (p *Proxy) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.lis = lis
	return nil
}

// Addr returns the bound address (nil before Listen).
func (p *Proxy) Addr() net.Addr {
	if p.lis == nil {
		return nil
	}
	return p.lis.Addr()
}

// Serve accepts and relays connections until Close.
func (p *Proxy) Serve() error {
	if p.lis == nil {
		return errors.New("lbproxy: Serve before Listen")
	}
	p.ctrl.Start()
	if p.cfg.HealthInterval > 0 {
		go p.probeLoop()
	}
	if p.cfg.SweepInterval > 0 {
		go p.sweepLoop()
	}
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			if p.closed.Load() {
				return nil
			}
			return err
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// ListenAndServe combines Listen and Serve.
func (p *Proxy) ListenAndServe(addr string) error {
	if err := p.Listen(addr); err != nil {
		return err
	}
	return p.Serve()
}

// Close stops the proxy, closes open relays, and runs a final controller
// tick so every aggregated latency sample is merged into the policy
// (post-Close Stats satisfy Samples == SamplesDelivered + SamplesDropped).
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		p.ctrl.Close() // idempotent; runs the final flush tick
		return nil
	}
	close(p.stop)
	var err error
	if p.lis != nil {
		err = p.lis.Close()
	}
	p.connMu.Lock()
	for c := range p.open {
		_ = c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
	p.ctrl.Close()
	return err
}

// now returns monotonic time since proxy start, the estimator clock.
func (p *Proxy) now() time.Duration { return time.Since(p.start) }

// flowKeyFor derives the estimator flow key from the connection 4-tuple.
func flowKeyFor(conn net.Conn) packet.FlowKey {
	key := packet.FlowKey{Proto: packet.ProtoTCP}
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		key.SrcIP = ap.Addr().Unmap().As4()
		key.SrcPort = ap.Port()
	}
	if ap, err := netip.ParseAddrPort(conn.LocalAddr().String()); err == nil {
		key.DstIP = ap.Addr().Unmap().As4()
		key.DstPort = ap.Port()
	}
	return key
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	key := flowKeyFor(client)
	hash := key.Hash() // hashed once; reused for routing, sharding, sampling
	now := p.now()

	// Route applies health ejection inline: for table-based policies it is
	// a pure snapshot read; for stateful ones the controller undoes the
	// original pick's occupancy accounting before falling back, so nothing
	// leaks when the pick lands on an ejected backend.
	backend, fellBack := p.ctrl.RouteHashed(hash, key, now)
	if backend < 0 || backend >= len(p.cfg.Backends) {
		return // whole pool ejected (or policy misbehaved); drop
	}
	if fellBack {
		p.fallbacks.Add(1)
	}

	server, err := net.DialTimeout("tcp", p.cfg.Backends[backend], p.cfg.DialTimeout)
	if err != nil {
		p.dialErrors.Add(1)
		p.ctrl.FlowClosed(backend, p.now())
		return
	}
	defer server.Close()
	p.perBackend[backend].Add(1)
	p.active.Add(1)
	defer p.active.Add(-1)

	p.connMu.Lock()
	p.open[client] = struct{}{}
	p.open[server] = struct{}{}
	p.connMu.Unlock()
	defer func() {
		p.connMu.Lock()
		delete(p.open, client)
		delete(p.open, server)
		p.connMu.Unlock()
	}()

	done := make(chan struct{}, 2)

	// Response direction: a blind relay. No timestamps are taken here —
	// the estimator must work without seeing this traffic, as under DSR.
	go func() {
		bufp := p.getBuf()
		defer p.putBuf(bufp)
		_, _ = io.CopyBuffer(client, server, *bufp)
		closeWrite(client)
		done <- struct{}{}
	}()

	// Request direction: every read is a client→server arrival whose
	// timestamp feeds the in-band estimator. Lock-free up to shard
	// striping: no proxy-global mutex is taken here.
	go func() {
		bufp := p.getBuf()
		defer p.putBuf(bufp)
		buf := *bufp
		for {
			n, rerr := client.Read(buf)
			if n > 0 {
				p.observe(hash, key, backend)
				if _, werr := server.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		closeWrite(server)
		done <- struct{}{}
	}()

	<-done
	<-done

	p.flows.ForgetHashed(hash, key)
	p.ctrl.FlowClosed(backend, p.now())
}

// observe feeds one request-direction read into the flow's estimator shard
// and, when a latency sample pops out, into the controller's matching
// aggregator stripe. Both sides stripe on the same precomputed hash, so a
// relay goroutine touches one shard's cache lines end to end.
func (p *Proxy) observe(hash uint64, key packet.FlowKey, backend int) {
	now := p.now()
	sample, ok := p.flows.ObserveHashed(hash, key, now)
	if ok {
		p.samples.Add(1)
		p.ctrl.ObserveSharded(hash, backend, now, sample)
	}
}

// closeWrite half-closes the write side when the transport supports it,
// propagating EOF to the peer like a forwarded FIN.
func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}

// probeLoop actively dials each backend every HealthInterval and flips its
// ejection bit on failure/recovery. State changes go to the controller,
// which republishes the routing snapshot immediately — ejections take
// effect on the next accepted connection, not the next control tick.
func (p *Proxy) probeLoop() {
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		for i, addr := range p.cfg.Backends {
			down := false
			conn, err := net.DialTimeout("tcp", addr, p.cfg.HealthTimeout)
			if err != nil {
				down = true
			} else {
				_ = conn.Close()
			}
			if p.down[i].Swap(down) != down {
				p.ctrl.SetEjected(i, down)
			}
		}
	}
}

// sweepLoop incrementally expires idle flows, one shard per tick, so
// connections that vanished without a clean close (and thus without
// Forget) do not pin estimator state forever.
func (p *Proxy) sweepLoop() {
	t := time.NewTicker(p.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.flows.SweepNext(p.now())
		}
	}
}

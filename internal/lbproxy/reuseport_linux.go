//go:build linux

package lbproxy

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, not exported by package syscall. With it
// set on every listener before bind, the kernel accepts N sockets on one
// address and hashes incoming SYNs across them — each acceptor gets its
// own accept queue and its own wakeups, so accept throughput scales with
// acceptors instead of serializing on one listener's lock.
const soReusePort = 0xf

// reusePortControl sets SO_REUSEPORT on the socket before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

// listenShards binds n listeners to addr. For n == 1 it is a plain
// net.Listen — no REUSEPORT, identical to the historical single-acceptor
// behavior (including "address in use" conflicts with other processes).
// For n > 1 every socket sets SO_REUSEPORT; when addr asks for an
// ephemeral port (":0"), the port the first bind got is reused for the
// rest so all shards share one address.
func listenShards(addr string, n int) ([]net.Listener, error) {
	if n <= 1 {
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{lis}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	out := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		lis, err := lc.Listen(context.Background(), "tcp", addr)
		if err != nil {
			for _, l := range out {
				_ = l.Close()
			}
			return nil, err
		}
		out = append(out, lis)
		if i == 0 {
			// Pin the concrete port the kernel chose so shards 1..n-1 bind
			// the same address addr=":0" resolved to.
			addr = lis.Addr().String()
		}
	}
	return out, nil
}

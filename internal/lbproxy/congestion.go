package lbproxy

import (
	"net"
	"time"
)

// Congestion-signal plumbing: every relayed backend connection is
// registered here while it lives, and a single sampling loop walks the
// registry every CongestionSampleInterval reading TCP_INFO off each socket.
// Retransmission *deltas* (the cumulative counter's growth since the last
// visit) are fed to the controller's transport-distress channel, attributed
// to the connection's backend and striped by its flow hash — exactly the
// shape the simulated packet tracker produces, so the detector downstream
// cannot tell live evidence from simulated.
//
// The loop owns all entry mutation under congMu; syscalls happen outside
// the lock so a slow socket never stalls registration. An entry whose
// sample fails (connection closed, wrapped, or TCP_INFO latched broken) is
// dropped — that is also how netpoll-owned connections, which have no
// teardown hook in handle(), leave the registry.

// congEntry is one registered backend connection.
type congEntry struct {
	backend int
	hash    uint64
	// lastRetrans is the cumulative tcpi_total_retrans at the previous
	// visit; primed flips after the first successful sample so a pooled
	// connection's pre-registration history is never charged.
	lastRetrans uint32
	primed      bool
}

// congRegister enrolls a backend connection for sampling. No-op unless
// congestion signals are enabled.
func (p *Proxy) congRegister(server net.Conn, backend int, hash uint64) {
	if p.cong == nil {
		return
	}
	p.congMu.Lock()
	p.cong[server] = &congEntry{backend: backend, hash: hash}
	p.congMu.Unlock()
}

// congFinal takes one last sample and removes the connection from the
// registry; the goroutine-relay teardown calls it so a burst of
// retransmissions in the final sampling window is still attributed.
func (p *Proxy) congFinal(server net.Conn) {
	if p.cong == nil {
		return
	}
	total, _, ok := sampleTCPInfo(server)
	p.congMu.Lock()
	e, present := p.cong[server]
	delete(p.cong, server)
	if present && ok {
		p.congCharge(e, total)
	}
	p.congMu.Unlock()
}

// congCharge folds one cumulative reading into an entry, forwarding the
// growth to the controller. Called with congMu held — the lock serializes
// the sampling loop against congFinal racing the same entry. The
// controller's congestion channel shards under its own locks and never
// takes congMu, so the ordering is acyclic.
func (p *Proxy) congCharge(e *congEntry, total uint32) {
	p.congSamples.Add(1)
	if !e.primed {
		e.primed = true
		e.lastRetrans = total
		return
	}
	if delta := total - e.lastRetrans; delta > 0 {
		e.lastRetrans = total
		p.congRetrans.Add(uint64(delta))
		p.ctrl.ObserveCongestion(e.hash, e.backend, int(delta), 0, 0)
	}
}

// congLoop samples every registered connection once per
// CongestionSampleInterval until the proxy closes.
func (p *Proxy) congLoop() {
	t := time.NewTicker(p.cfg.CongestionSampleInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.congSweep()
		}
	}
}

// congSweep is one pass over the registry. The conn set is snapshotted
// under the lock, the syscalls run outside it, and each result is folded
// back in only if the entry is still registered — congFinal may have raced
// the sample and already charged the final reading.
func (p *Proxy) congSweep() {
	p.congMu.Lock()
	conns := make([]net.Conn, 0, len(p.cong))
	for c := range p.cong {
		conns = append(conns, c)
	}
	p.congMu.Unlock()

	for _, c := range conns {
		total, _, ok := sampleTCPInfo(c)
		p.congMu.Lock()
		e, present := p.cong[c]
		switch {
		case !ok:
			// Closed, wrapped, or TCP_INFO broken: stop tracking. This is
			// the only cleanup path for netpoll-owned connections.
			delete(p.cong, c)
		case present:
			p.congCharge(e, total)
		}
		p.congMu.Unlock()
	}
}

//go:build !linux

package lbproxy

import "syscall"

// Non-Linux build: there is no splice(2); every relay takes the pooled
// userspace buffer path. These stubs keep the relay code free of build
// tags — spliceAvailable() gates the zero-copy branch out entirely.

func spliceAvailable() bool { return false }

func pipeCycle() bool { return false }

type rawConner interface {
	SyscallConn() (syscall.RawConn, error)
}

func (p *Proxy) spliceStream(dst, src rawConner, arm func(), onChunk func()) (handled bool, err error, writeSide bool) {
	return false, nil, false
}

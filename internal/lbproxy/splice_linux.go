//go:build linux

package lbproxy

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
)

// Zero-copy relay: on Linux, relay bytes between two TCP sockets through a
// kernel pipe with splice(2), so payloads never cross into userspace. The
// estimator still gets its per-arrival timestamps — each readiness event on
// the source socket is one observation — it just stops paying a 32 KiB
// memcpy for them.
//
// The state machine per chunk is:
//
//	park on src readability (netpoller, honors the idle deadline)
//	  → splice src→pipe   (EAGAIN: release pipe, re-park)
//	  → onChunk()         (the estimator's arrival timestamp)
//	  → splice pipe→dst until the pipe is drained (parking on dst
//	    writability as needed)
//
// A pipe is checked out of a sync.Pool lazily inside the read callback and
// returned before every park, so a connection that sits idle — the common
// state for 100k-connection fan-in — pins zero pipe buffers. The pipe is
// returned to the pool only when fully drained; a teardown mid-drain
// destroys it instead, because its contents are unrecoverable.
//
// The first splice(2) failure with ENOSYS/EINVAL/EPERM (container seccomp
// filters, exotic socket types) flips a process-wide flag and every relay
// falls back to the pooled-buffer copy path. The read side consumes
// nothing in that case, so the fallback starts from a clean stream.

const (
	// spliceChunk is the per-call byte budget. The kernel moves at most
	// the pipe's free space; asking for more costs nothing.
	spliceChunk = 1 << 20
	// pipeCapacity is requested via F_SETPIPE_SZ so one splice can move
	// multiples of the default 64 KiB pipe. Best effort: unprivileged
	// processes are capped by /proc/sys/fs/pipe-max-size.
	pipeCapacity = 256 << 10
	fSetPipeSz   = 1031 // F_SETPIPE_SZ (not exported by package syscall)

	// SPLICE_F_MOVE | SPLICE_F_NONBLOCK (package syscall exports the
	// splice syscall but not its flag constants).
	spliceFlags = 0x1 | 0x2
)

// spliceBroken latches once splice(2) proves unusable in this process;
// every subsequent relay takes the copy path without retrying the syscall.
var spliceBroken atomic.Bool

// spliceAvailable reports whether the zero-copy path is worth attempting.
func spliceAvailable() bool { return !spliceBroken.Load() }

// spipe is a pooled kernel pipe pair. The finalizer closes the fds when
// the GC drops a pooled entry (sync.Pool sheds under memory pressure), so
// pipe fds can never leak.
type spipe struct {
	r, w int
}

// pipesCreated counts pipe allocations; the perf hygiene gate asserts it
// stays flat across steady-state relay cycles.
var pipesCreated atomic.Uint64

var pipePool = sync.Pool{
	New: func() any {
		var fds [2]int
		if err := syscall.Pipe2(fds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
			return (*spipe)(nil)
		}
		// Enlarge best-effort; the default 64 KiB pipe still works.
		_, _, _ = syscall.Syscall(syscall.SYS_FCNTL, uintptr(fds[0]), fSetPipeSz, uintptr(pipeCapacity))
		pipesCreated.Add(1)
		sp := &spipe{r: fds[0], w: fds[1]}
		runtime.SetFinalizer(sp, (*spipe).destroy)
		return sp
	},
}

func getPipe() *spipe {
	sp, _ := pipePool.Get().(*spipe)
	return sp // nil if Pipe2 failed (fd exhaustion): caller falls back
}

func putPipe(sp *spipe) { pipePool.Put(sp) }

// destroy closes the pipe fds; used for teardown with undrained bytes and
// as the GC finalizer. Idempotent via the fd sentinel.
func (sp *spipe) destroy() {
	if sp == nil || sp.r < 0 {
		return
	}
	runtime.SetFinalizer(sp, nil)
	_ = syscall.Close(sp.r)
	_ = syscall.Close(sp.w)
	sp.r, sp.w = -1, -1
}

// pipeCycle exercises one pool checkout/checkin for the perf hygiene gate.
func pipeCycle() bool {
	sp := getPipe()
	if sp == nil {
		return false
	}
	putPipe(sp)
	return true
}

// spliceFallbackErrno reports whether an errno from the first-ever splice
// on a stream means "unsupported here" rather than "stream failed".
func spliceFallbackErrno(err error) bool {
	return err == syscall.EINVAL || err == syscall.ENOSYS ||
		err == syscall.EPERM || err == syscall.EOPNOTSUPP
}

// rawConner matches *net.TCPConn's raw-access surface.
type rawConner interface {
	SyscallConn() (syscall.RawConn, error)
}

// spliceStream relays src→dst through a pooled pipe until EOF or error.
//
// arm re-arms src's read deadline before each park; onChunk (may be nil)
// fires once per chunk arrival, before the chunk is forwarded — this is
// where the request direction timestamps arrivals for the estimator.
//
// Returns handled=false (with nothing consumed) when splice cannot be
// used on this pair, in which case the caller must run the copy loop.
// Otherwise err is io.EOF for a clean src EOF or the failing error, and
// writeSide tells which end failed (true: dst).
func (p *Proxy) spliceStream(dst, src rawConner, arm func(), onChunk func()) (handled bool, err error, writeSide bool) {
	if !spliceAvailable() {
		return false, nil, false
	}
	srcRaw, serr := src.SyscallConn()
	if serr != nil {
		return false, nil, false
	}
	dstRaw, derr := dst.SyscallConn()
	if derr != nil {
		return false, nil, false
	}

	var (
		pp     *spipe
		inPipe int  // bytes sitting in the pipe, not yet written to dst
		moved  bool // any byte ever spliced on this stream
	)
	defer func() {
		if pp == nil {
			return
		}
		if inPipe == 0 {
			putPipe(pp)
		} else {
			pp.destroy() // undrained teardown: contents unrecoverable
		}
	}()

	for {
		arm()
		var (
			rn     int
			rerrno error
		)
		waitErr := srcRaw.Read(func(fd uintptr) bool {
			if pp == nil {
				if pp = getPipe(); pp == nil {
					rerrno = syscall.EMFILE
					return true
				}
			}
			for {
				n, e := syscall.Splice(int(fd), nil, pp.w, nil, spliceChunk, spliceFlags)
				p.sysSplices.Add(1)
				if e == syscall.EINTR {
					continue
				}
				if e == syscall.EAGAIN {
					// Socket has no bytes ready. Hand the pipe back before
					// parking so idle connections pin no pipe buffers.
					putPipe(pp)
					pp = nil
					return false
				}
				rn, rerrno = int(n), e
				return true
			}
		})
		if waitErr != nil {
			return true, waitErr, false // deadline expiry or closed conn
		}
		if rerrno != nil {
			if !moved && spliceFallbackErrno(rerrno) {
				// First splice in this stream says "not here" — nothing was
				// consumed, so the copy loop can take over. Latch the flag
				// only for errnos that condemn the whole process, not a
				// single odd socket.
				if rerrno == syscall.ENOSYS || rerrno == syscall.EPERM {
					spliceBroken.Store(true)
				}
				return false, nil, false
			}
			return true, rerrno, false
		}
		if rn == 0 {
			return true, io.EOF, false
		}
		moved = true
		if onChunk != nil {
			onChunk()
		}

		inPipe = rn
		for inPipe > 0 {
			var (
				wn     int
				werrno error
			)
			waitErr := dstRaw.Write(func(fd uintptr) bool {
				for {
					n, e := syscall.Splice(pp.r, nil, int(fd), nil, inPipe, spliceFlags)
					p.sysSplices.Add(1)
					if e == syscall.EINTR {
						continue
					}
					if e == syscall.EAGAIN {
						return false // park on dst writability
					}
					wn, werrno = int(n), e
					return true
				}
			})
			if waitErr != nil {
				return true, waitErr, true
			}
			if werrno != nil {
				return true, werrno, true
			}
			if wn <= 0 {
				return true, io.ErrUnexpectedEOF, true
			}
			inPipe -= wn
		}
	}
}

package lbproxy

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
)

// StatusSnapshot is the JSON document served by the status handler.
type StatusSnapshot struct {
	UptimeSeconds float64  `json:"uptime_seconds"`
	Policy        string   `json:"policy"`
	Backends      []string `json:"backends"`
	// FlowTableShards is the measurement path's lock-stripe width;
	// TrackedFlows the current flow-table population.
	FlowTableShards int   `json:"flow_table_shards"`
	TrackedFlows    int   `json:"tracked_flows"`
	Stats           Stats `json:"stats"`
	// Goroutines is a live runtime.NumGoroutine gauge. Under the netpoll
	// dataplane it stays O(shards) regardless of connection count; on the
	// goroutine-per-connection path it tracks 2x the active relays.
	Goroutines int `json:"goroutines"`
	// SnapshotGeneration counts routing-snapshot publications (table
	// rebuilds merged by control ticks plus health-eject flips); zero for
	// stateful policies that route under the mutex instead of a snapshot.
	SnapshotGeneration uint64 `json:"snapshot_generation"`
	// Weights is present for weight-based policies (latency-aware,
	// proportional); nil otherwise.
	Weights []float64 `json:"weights,omitempty"`
	// LatenciesMs is the per-backend EWMA latency in milliseconds for
	// policies that expose one; nil otherwise.
	LatenciesMs []float64 `json:"latencies_ms,omitempty"`
}

// weighted is implemented by policies that expose a weight vector.
type weighted interface {
	Weights() []float64
}

// latencied is implemented by policies that expose per-server latency
// aggregation (LatencyAware, Proportional).
type latencied interface {
	Latency() *core.ServerLatency
}

// Snapshot assembles the current status document.
func (p *Proxy) Snapshot() StatusSnapshot {
	snap := StatusSnapshot{
		UptimeSeconds:      time.Since(p.start).Seconds(),
		Policy:             p.cfg.Policy.Name(),
		Backends:           append([]string(nil), p.cfg.Backends...),
		FlowTableShards:    p.flows.Shards(),
		TrackedFlows:       p.flows.Len(),
		Stats:              p.Stats(),
		Goroutines:         runtime.NumGoroutine(),
		SnapshotGeneration: p.ctrl.Generation(),
	}
	// Policy state is read under the controller's serialization lock so the
	// snapshot cannot race a control tick.
	p.ctrl.Do(func(pol control.Policy) {
		if w, ok := pol.(weighted); ok {
			snap.Weights = w.Weights()
		}
		if l, ok := pol.(latencied); ok {
			for _, d := range l.Latency().Snapshot() {
				snap.LatenciesMs = append(snap.LatenciesMs, float64(d)/1e6)
			}
		}
	})
	return snap
}

// StatusHandler serves the proxy's live state as JSON — weights, per-backend
// latencies, health, and counters — for dashboards and debugging.
func (p *Proxy) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Snapshot())
	})
}

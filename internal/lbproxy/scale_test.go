package lbproxy

import (
	"flag"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/testbed"
)

// stressConns gates the concurrent-connection scale stresses. 0 skips
// them (the default: the tests pin tens of thousands of fds and are
// meant for explicit runs, e.g. `go test -run ConnScale
// -stress.conns=100000`). Whatever is requested is capped to what
// RLIMIT_NOFILE can actually hold (testbed.MaxProxiedConns).
var stressConns = flag.Int("stress.conns", 0, "target concurrent connections for the ConnScaleStress tests (0 = skip; capped by RLIMIT_NOFILE/4)")

// TestProxyConnScaleStress holds N concurrent connections open through
// the full syscall-diet dataplane at once — splice relays parked on
// readiness (an idle connection pins no pipe), acceptor shards, and the
// sharded estimator path — then tears everything down and checks the
// books balance exactly:
//
//   - every connection was accepted, routed, and observed (Accepted ==
//     sum(PerBackend), one estimator observation each),
//   - zero estimator samples lost (Samples == SamplesDelivered, dropped 0),
//   - Active returns to 0 and relay goroutines drain.
//
// Clients dial from rotating loopback source addresses (127.0.0.2-9) so
// the ephemeral-port space per (src,dst) tuple is never the binding
// constraint; in this harness the fd rlimit is.
func TestProxyConnScaleStress(t *testing.T) {
	runConnScaleStress(t, false)
}

// TestProxyConnScaleStressNetpoll is the same fleet held by the
// event-driven dataplane: O(acceptor shards) poller goroutines own every
// relay instead of two goroutines per connection. Beyond the shared
// accounting identities it asserts the goroutine count stays far below
// the connection count while the fleet is parked.
func TestProxyConnScaleStressNetpoll(t *testing.T) {
	runConnScaleStress(t, true)
}

func runConnScaleStress(t *testing.T, netpoll bool) {
	if *stressConns == 0 {
		t.Skip("scale stress: set -stress.conns=N to run")
	}
	target := *stressConns
	if max := testbed.MaxProxiedConns(); target > max {
		t.Logf("capping -stress.conns=%d to %d (RLIMIT_NOFILE/4 with headroom)", target, max)
		target = max
	}

	// Hold backends: accept, swallow the greeting, keep the conn open.
	const nBackends = 4
	backends, stopBackends, err := testbed.StartHoldBackends(nBackends)
	if err != nil {
		t.Fatal(err)
	}
	defer stopBackends()

	proxy, err := New(Config{
		Backends:  backends,
		Policy:    control.NewRoundRobin(nBackends),
		Shards:    4,
		Acceptors: 4,
		Splice:    true,
		Netpoll:   netpoll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if netpoll && len(proxy.np) == 0 {
		_ = proxy.Close()
		t.Skip("netpoll dataplane unavailable on this platform")
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	defer proxy.Close()
	paddr := proxy.Addr().String()

	// Establish the fleet: each connection sends one greeting so the
	// estimator observes its first byte and the relay then parks.
	// baseGoroutines is the pre-fleet floor; the hold backends add one
	// swallow-loop goroutine per proxied connection on top of it, which the
	// netpoll budget check below subtracts back out.
	baseGoroutines := runtime.NumGoroutine()
	greeting := []byte("hold 0123456789abcdef 0123456789abcdef\r\n")
	conns := make([]net.Conn, 0, target)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < target; i++ {
		d := testbed.RotatingDialer(i, 5*time.Second)
		c, err := d.Dial("tcp", paddr)
		if err != nil {
			t.Fatalf("dial %d/%d: %v", i, target, err)
		}
		conns = append(conns, c)
		if _, err := c.Write(greeting); err != nil {
			t.Fatalf("greeting %d/%d: %v", i, target, err)
		}
	}
	setup := time.Since(start)

	// All of them must be admitted, validated, and counted as active.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active < int64(target) {
		time.Sleep(20 * time.Millisecond)
	}
	st := proxy.Stats()
	goroutines := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("held %d conns: setup %.1fs (%.0f conns/s), %d goroutines, %.1f MiB heap, stats %+v",
		target, setup.Seconds(), float64(target)/setup.Seconds(),
		goroutines, float64(ms.HeapInuse)/(1<<20),
		struct {
			Accepted, Samples, DialErrors, Dropped uint64
			Active                                 int64
		}{
			st.Accepted, st.Samples, st.DialErrors, st.Dropped, st.Active})
	if netpoll {
		t.Logf("netpoll shards: %+v", st.Netpoll)
		// The event-driven dataplane's whole point: the fleet is parked on
		// epoll, not on 2N relay goroutine stacks. The in-process hold
		// backends pin one goroutine per connection; everything above that
		// is the proxy's share, which must be O(shards), not O(conns).
		relayGoroutines := goroutines - baseGoroutines - target
		t.Logf("proxy-side goroutines beyond backends: %d (goroutine path would pin ~%d)",
			relayGoroutines, 2*target)
		if target >= 1000 && relayGoroutines > target/10 {
			t.Errorf("netpoll fleet pinned %d proxy goroutines for %d conns, want O(shards)",
				relayGoroutines, target)
		}
		var reg int64
		for _, sh := range st.Netpoll {
			reg += sh.RegisteredFDs
		}
		if reg < int64(target) {
			t.Errorf("registered fds = %d across shards, want >= %d", reg, target)
		}
	}
	if st.Active != int64(target) {
		t.Fatalf("active = %d, want %d", st.Active, target)
	}
	if st.Accepted != uint64(target) || st.DialErrors != 0 || st.Dropped != 0 {
		t.Fatalf("admission stats off: %+v", st)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if routed != uint64(target) {
		t.Fatalf("routed %d != %d (perBackend %v)", routed, target, st.PerBackend)
	}
	// One observation per flow yields no inter-arrival sample; send a
	// second round of greetings — these relay through the parked splice
	// path — so every flow crosses a batch boundary and produces one.
	for i, c := range conns {
		if _, err := c.Write(greeting); err != nil {
			t.Fatalf("second greeting %d/%d: %v", i, target, err)
		}
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Samples < uint64(target) {
		time.Sleep(20 * time.Millisecond)
	}
	if s := proxy.Stats().Samples; s < uint64(target) {
		t.Fatalf("samples = %d, want >= %d (one batch-boundary sample per conn)", s, target)
	}

	// Teardown: close every client; relays must notice and drain.
	for _, c := range conns {
		_ = c.Close()
	}
	conns = conns[:0]
	deadline = time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(50 * time.Millisecond)
	}
	if a := proxy.Stats().Active; a != 0 {
		t.Fatalf("active = %d after closing all clients", a)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped || st.SamplesDropped != 0 {
		t.Errorf("estimator sample loss at scale: samples %d, delivered %d, dropped %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
	if testing.Verbose() {
		fmt.Printf("scale teardown clean: %d conns, %d samples, 0 dropped\n", target, st.Samples)
	}
}

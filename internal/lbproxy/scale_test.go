package lbproxy

import (
	"flag"
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"inbandlb/internal/control"
)

// stressConns gates the concurrent-connection scale stress. 0 skips it
// (the default: the test pins tens of thousands of fds and is meant for
// explicit runs, e.g. `go test -run ConnScale -stress.conns=100000`).
// Whatever is requested is capped to what RLIMIT_NOFILE can actually
// hold: the whole topology lives in one process, so every proxied
// connection costs 4 fds (client end, proxy's two ends, backend end).
var stressConns = flag.Int("stress.conns", 0, "target concurrent connections for TestProxyConnScaleStress (0 = skip; capped by RLIMIT_NOFILE/4)")

// maxScaleConns raises RLIMIT_NOFILE as far as the hard limit allows and
// returns how many proxied connections fit, leaving headroom for
// listeners, pipes, and the runtime's own fds.
func maxScaleConns() int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1000
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		_ = syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	const headroom = 512
	if rl.Cur < headroom*2 {
		return 64
	}
	return int(rl.Cur-headroom) / 4
}

// TestProxyConnScaleStress holds N concurrent connections open through
// the full syscall-diet dataplane at once — splice relays parked on
// readiness (an idle connection pins no pipe), acceptor shards, and the
// sharded estimator path — then tears everything down and checks the
// books balance exactly:
//
//   - every connection was accepted, routed, and observed (Accepted ==
//     sum(PerBackend), one estimator observation each),
//   - zero estimator samples lost (Samples == SamplesDelivered, dropped 0),
//   - Active returns to 0 and relay goroutines drain.
//
// Clients dial from rotating loopback source addresses (127.0.0.2-9) so
// the ephemeral-port space per (src,dst) tuple is never the binding
// constraint; in this harness the fd rlimit is.
func TestProxyConnScaleStress(t *testing.T) {
	if *stressConns == 0 {
		t.Skip("scale stress: set -stress.conns=N to run")
	}
	target := *stressConns
	if max := maxScaleConns(); target > max {
		t.Logf("capping -stress.conns=%d to %d (RLIMIT_NOFILE/4 with headroom)", target, max)
		target = max
	}

	// Hold backends: accept, swallow the greeting, keep the conn open.
	const nBackends = 4
	backends := make([]string, nBackends)
	var backendConns sync.Map
	for i := range backends {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer lis.Close()
		backends[i] = lis.Addr().String()
		go func(lis net.Listener) {
			for {
				c, err := lis.Accept()
				if err != nil {
					return
				}
				backendConns.Store(c, struct{}{})
				go func(c net.Conn) {
					buf := make([]byte, 256)
					for {
						if _, err := c.Read(buf); err != nil {
							_ = c.Close()
							backendConns.Delete(c)
							return
						}
					}
				}(c)
			}
		}(lis)
	}

	proxy, err := New(Config{
		Backends:  backends,
		Policy:    control.NewRoundRobin(nBackends),
		Shards:    4,
		Acceptors: 4,
		Splice:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	defer proxy.Close()
	paddr := proxy.Addr().String()

	// Establish the fleet: each connection sends one greeting so the
	// estimator observes its first byte and the relay then parks.
	greeting := []byte("hold 0123456789abcdef 0123456789abcdef\r\n")
	conns := make([]net.Conn, 0, target)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < target; i++ {
		d := net.Dialer{
			Timeout: 5 * time.Second,
			// Rotate source IPs so no (src,dst) tuple exhausts its
			// ephemeral ports even at six-figure counts.
			LocalAddr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, byte(2+i%8))},
		}
		c, err := d.Dial("tcp", paddr)
		if err != nil {
			t.Fatalf("dial %d/%d: %v", i, target, err)
		}
		conns = append(conns, c)
		if _, err := c.Write(greeting); err != nil {
			t.Fatalf("greeting %d/%d: %v", i, target, err)
		}
	}
	setup := time.Since(start)

	// All of them must be admitted, validated, and counted as active.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active < int64(target) {
		time.Sleep(20 * time.Millisecond)
	}
	st := proxy.Stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("held %d conns: setup %.1fs (%.0f conns/s), %d goroutines, %.1f MiB heap, stats %+v",
		target, setup.Seconds(), float64(target)/setup.Seconds(),
		runtime.NumGoroutine(), float64(ms.HeapInuse)/(1<<20),
		struct {
			Accepted, Samples, DialErrors, Dropped uint64
			Active                                int64
		}{
			st.Accepted, st.Samples, st.DialErrors, st.Dropped, st.Active})
	if st.Active != int64(target) {
		t.Fatalf("active = %d, want %d", st.Active, target)
	}
	if st.Accepted != uint64(target) || st.DialErrors != 0 || st.Dropped != 0 {
		t.Fatalf("admission stats off: %+v", st)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if routed != uint64(target) {
		t.Fatalf("routed %d != %d (perBackend %v)", routed, target, st.PerBackend)
	}
	// One observation per flow yields no inter-arrival sample; send a
	// second round of greetings — these relay through the parked splice
	// path — so every flow crosses a batch boundary and produces one.
	for i, c := range conns {
		if _, err := c.Write(greeting); err != nil {
			t.Fatalf("second greeting %d/%d: %v", i, target, err)
		}
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Samples < uint64(target) {
		time.Sleep(20 * time.Millisecond)
	}
	if s := proxy.Stats().Samples; s < uint64(target) {
		t.Fatalf("samples = %d, want >= %d (one batch-boundary sample per conn)", s, target)
	}

	// Teardown: close every client; relays must notice and drain.
	for _, c := range conns {
		_ = c.Close()
	}
	conns = conns[:0]
	deadline = time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(50 * time.Millisecond)
	}
	if a := proxy.Stats().Active; a != 0 {
		t.Fatalf("active = %d after closing all clients", a)
	}
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped || st.SamplesDropped != 0 {
		t.Errorf("estimator sample loss at scale: samples %d, delivered %d, dropped %d",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
	if testing.Verbose() {
		fmt.Printf("scale teardown clean: %d conns, %d samples, 0 dropped\n", target, st.Samples)
	}
}

package lbproxy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/memcache"
)

// TestProxyConcurrentStress is the race-detector proof of the sharded
// measurement path: many concurrent clients hammer the proxy while the
// per-read estimator path, the policy funnel, the health prober, and
// status snapshots all run. Afterwards the Stats invariants must hold
// exactly:
//
//   - Accepted == sum(PerBackend) + DialErrors (every accepted connection
//     is routed to exactly one backend or failed its dial),
//   - Active returns to 0 once clients drain,
//   - after Close, Samples == SamplesDelivered + SamplesDropped (no sample
//     is lost beyond the documented buffer-shedding, which is counted).
func TestProxyConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket stress test")
	}
	const nBackends = 3
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}

	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"b0", "b1", "b2"},
		Alpha:     0.10,
		TableSize: 1021,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(Config{
		Backends: backends,
		Policy:   la,
		// Small shard count and sample buffer to maximize contention on
		// both stages under the race detector.
		Shards:         4,
		SampleBuffer:   256,
		SweepInterval:  20 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
		FlowTable:      core.FlowTableConfig{IdleTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	// Concurrent status reads race-check the snapshot path against the
	// hot path for the duration of the stress run.
	snapStop := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-snapStop:
				return
			default:
				snap := proxy.Snapshot()
				if len(snap.Weights) != nBackends {
					t.Errorf("snapshot weights len = %d", len(snap.Weights))
					return
				}
				_ = proxy.Stats()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const (
		workers      = 24
		connsPerWkr  = 15
		setsPerConn  = 10
		dialAttempts = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < connsPerWkr; c++ {
				var cli *memcache.Client
				var err error
				for a := 0; a < dialAttempts; a++ {
					cli, err = memcache.Dial(paddr, 2*time.Second)
					if err == nil {
						break
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d dial: %w", w, err)
					return
				}
				_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
				for s := 0; s < setsPerConn; s++ {
					key := fmt.Sprintf("k-%d-%d", w, s)
					if err := cli.Set(key, []byte("v")); err != nil {
						_ = cli.Close()
						errs <- fmt.Errorf("worker %d set: %w", w, err)
						return
					}
				}
				_ = cli.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain: relays observe the client close asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	close(snapStop)
	snapWg.Wait()

	st := proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after drain, want 0", st.Active)
	}
	const want = workers * connsPerWkr
	if st.Accepted != want {
		t.Errorf("accepted = %d, want %d", st.Accepted, want)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors {
		t.Errorf("accepted %d != routed %d + dial errors %d",
			st.Accepted, routed, st.DialErrors)
	}
	if st.Samples == 0 {
		t.Error("no estimator samples under concurrent load")
	}

	// Close flushes the funnel; the sample accounting must then be exact.
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped {
		t.Errorf("samples %d != delivered %d + dropped %d after close",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
	// The funnel must have kept the single-threaded policy coherent: the
	// latency-aware weight vector still sums to ~1.
	var sum float64
	for _, w := range la.Weights() {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("weights sum %.4f after stress, want ≈1", sum)
	}
}

package lbproxy

import (
	"flag"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/faults"
	"inbandlb/internal/memcache"
	"inbandlb/internal/packet"
)

// chaosSeed parameterizes every random choice in the chaos flapping stress
// test — the Flaky schedules and the detector's backoff jitter — so a -race
// failure seen in CI reproduces locally from the seed the test logs. The
// default keeps the schedule the test has always run (7, 9, 11).
var chaosSeed = flag.Int64("chaos.seed", 7, "base seed for TestProxyChaosFlappingStress fault schedules")

// TestProxyConcurrentStress is the race-detector proof of the sharded
// measurement path: many concurrent clients hammer the proxy while the
// per-read estimator path, the controller's tick loop and snapshot
// publications, the health prober, and status snapshots all run.
// Afterwards the Stats invariants must hold exactly:
//
//   - Accepted == sum(PerBackend) + DialErrors + Dropped (every accepted
//     connection is routed to exactly one backend, failed every dial, or
//     was dropped with the pool ejected),
//   - Active returns to 0 once clients drain,
//   - after Close, Samples == SamplesDelivered + SamplesDropped (and with
//     lossless shard aggregation, SamplesDropped is always zero).
func TestProxyConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket stress test")
	}
	const nBackends = 3
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}

	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"b0", "b1", "b2"},
		Alpha:     0.10,
		TableSize: 1021,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(Config{
		Backends: backends,
		Policy:   la,
		// Small shard count and a fast control tick to maximize contention
		// between the data plane and snapshot publication under the race
		// detector.
		Shards:          4,
		ControlInterval: time.Millisecond,
		SweepInterval:   20 * time.Millisecond,
		HealthInterval:  25 * time.Millisecond,
		FlowTable:       core.FlowTableConfig{IdleTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })
	paddr := proxy.Addr().String()

	// Concurrent status reads race-check the snapshot path against the
	// hot path for the duration of the stress run.
	snapStop := make(chan struct{})
	var snapWg sync.WaitGroup
	snapWg.Add(1)
	go func() {
		defer snapWg.Done()
		for {
			select {
			case <-snapStop:
				return
			default:
				snap := proxy.Snapshot()
				if len(snap.Weights) != nBackends {
					t.Errorf("snapshot weights len = %d", len(snap.Weights))
					return
				}
				_ = proxy.Stats()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const (
		workers      = 24
		connsPerWkr  = 15
		setsPerConn  = 10
		dialAttempts = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < connsPerWkr; c++ {
				var cli *memcache.Client
				var err error
				for a := 0; a < dialAttempts; a++ {
					cli, err = memcache.Dial(paddr, 2*time.Second)
					if err == nil {
						break
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d dial: %w", w, err)
					return
				}
				_ = cli.SetDeadline(time.Now().Add(5 * time.Second))
				for s := 0; s < setsPerConn; s++ {
					key := fmt.Sprintf("k-%d-%d", w, s)
					if err := cli.Set(key, []byte("v")); err != nil {
						_ = cli.Close()
						errs <- fmt.Errorf("worker %d set: %w", w, err)
						return
					}
				}
				_ = cli.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain: relays observe the client close asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	close(snapStop)
	snapWg.Wait()

	st := proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after drain, want 0", st.Active)
	}
	const want = workers * connsPerWkr
	if st.Accepted != want {
		t.Errorf("accepted = %d, want %d", st.Accepted, want)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("accepted %d != routed %d + dial errors %d + dropped %d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
	if st.Samples == 0 {
		t.Error("no estimator samples under concurrent load")
	}

	// Close runs the final flush tick; the sample accounting must then be
	// exact — and with lossless aggregation, nothing may be dropped at all.
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	st = proxy.Stats()
	if st.Samples != st.SamplesDelivered+st.SamplesDropped {
		t.Errorf("samples %d != delivered %d + dropped %d after close",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
	if st.SamplesDropped != 0 {
		t.Errorf("dropped %d samples; shard aggregation must be lossless", st.SamplesDropped)
	}
	// The controller must have kept the single-threaded policy coherent:
	// the latency-aware weight vector still sums to ~1.
	var sum float64
	for _, w := range la.Weights() {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("weights sum %.4f after stress, want ≈1", sum)
	}
}

// TestProxyChaosFlappingStress pours connections through a chaos dialer
// whose Flaky schedules refuse, reset, and blackhole a deterministic slice
// of dials while the passive detector flaps backends through ejection,
// half-open trials, and slow-start — the ejection-churn scenario. With the
// race detector on, this is the proof that detector transitions, admission
// republishes, failover retries, and deadline-bounded relays are all safe
// together. Afterwards:
//
//   - no goroutine leaks (blackholed relays are bounded by IdleTimeout),
//   - snapshot generations observed during the run are monotonic,
//   - the Stats accounting identity holds exactly after Close.
func TestProxyChaosFlappingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket stress test")
	}
	const nBackends = 3
	backends := make([]string, nBackends)
	for i := range backends {
		_, backends[i] = startBackend(t)
	}
	baseGoroutines := runtime.NumGoroutine()

	seed := *chaosSeed
	t.Logf("repro: go test -race ./internal/lbproxy -run TestProxyChaosFlappingStress -chaos.seed=%d", seed)
	sched := faults.ConnStack{
		faults.Flaky{P: 0.25, Seed: uint64(seed)}, // refuse
		faults.Flaky{P: 0.08, Seed: uint64(seed) + 2, Fault: faults.ConnFault{Kind: faults.ConnReset, AfterBytes: 48}},
		faults.Flaky{P: 0.04, Seed: uint64(seed) + 4, Fault: faults.ConnFault{Kind: faults.ConnBlackhole}},
	}
	testStart := time.Now()
	chaosDial := faults.ChaosDialer(nil, sched, func() time.Duration { return time.Since(testStart) })

	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"b0", "b1", "b2"},
		Alpha:     0.10,
		TableSize: 1021,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := New(Config{
		Backends:        backends,
		Policy:          la,
		Shards:          4,
		ControlInterval: time.Millisecond,
		SweepInterval:   20 * time.Millisecond,
		FlowTable:       core.FlowTableConfig{IdleTimeout: 100 * time.Millisecond},
		Detector: control.DetectorConfig{
			Enabled:          true,
			FailureThreshold: 2,
			BackoffInitial:   20 * time.Millisecond,
			BackoffMax:       80 * time.Millisecond,
			SlowStartTicks:   10,
			Seed:             seed, // jittered backoff follows the test seed
		},
		Dial:         chaosDial,
		IdleTimeout:  150 * time.Millisecond,
		DrainTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()
	paddr := proxy.Addr().String()

	// Generation monitor: publications must be strictly monotonic from the
	// reader's side, no matter how fast health churn republishes.
	genStop := make(chan struct{})
	var genWg sync.WaitGroup
	genWg.Add(1)
	go func() {
		defer genWg.Done()
		var last uint64
		for {
			select {
			case <-genStop:
				return
			default:
			}
			g := proxy.ctrl.Generation()
			if g < last {
				t.Errorf("snapshot generation went backwards: %d -> %d", last, g)
				return
			}
			last = g
			time.Sleep(time.Millisecond)
		}
	}()

	const (
		workers     = 16
		connsPerWkr = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < connsPerWkr; c++ {
				cli, err := memcache.Dial(paddr, 2*time.Second)
				if err != nil {
					continue // chaos: accepted-then-dropped is expected
				}
				_ = cli.SetDeadline(time.Now().Add(time.Second))
				for s := 0; s < 5; s++ {
					if err := cli.Set(fmt.Sprintf("k-%d-%d", w, s), []byte("v")); err != nil {
						break // refused/reset/blackholed mid-stream: fine
					}
				}
				_ = cli.Close()
			}
		}(w)
	}
	wg.Wait()

	// Drain, then close (Close force-closes whatever chaos left pinned
	// after the drain grace).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && proxy.Stats().Active > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	close(genStop)
	genWg.Wait()
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}

	st := proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after close, want 0", st.Active)
	}
	var routed uint64
	for _, n := range st.PerBackend {
		routed += n
	}
	if st.Accepted != routed+st.DialErrors+st.Dropped {
		t.Errorf("identity violated: accepted %d != routed %d + dialErrors %d + dropped %d",
			st.Accepted, routed, st.DialErrors, st.Dropped)
	}
	if st.Samples != st.SamplesDelivered+st.SamplesDropped {
		t.Errorf("samples %d != delivered %d + dropped %d after close",
			st.Samples, st.SamplesDelivered, st.SamplesDropped)
	}
	if st.Accepted == 0 || routed == 0 {
		t.Errorf("chaos shed everything (accepted=%d routed=%d): schedule too hostile", st.Accepted, routed)
	}

	// No goroutine leaks: relays, probes, sweeper, ticker all wound down.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+4 {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+4 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d now vs %d at start\n%s",
			g, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
}

// TestProxyIdleTimeoutFreesBothDirections is the relay-teardown
// regression test: when ONE direction of a relay dies (here the response
// direction idle-times-out against a backend that swallows requests and
// never replies), the peer direction must be torn down with it, not left
// stranded. A client that keeps writing — so the request direction never
// idles on its own — must see its connection die shortly after the
// response side's idle timeout, and no relay goroutines may survive.
func TestProxyIdleTimeoutFreesBothDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket timing test")
	}
	baseGoroutines := runtime.NumGoroutine()

	// A backend that reads everything and answers nothing.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, c); _ = c.Close() }()
		}
	}()

	const idle = 100 * time.Millisecond
	proxy, err := New(Config{
		Backends:    []string{lis.Addr().String()},
		Policy:      control.NewRoundRobin(1),
		IdleTimeout: idle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go func() { _ = proxy.Serve() }()

	const clients = 4
	done := make(chan time.Duration, clients)
	for i := 0; i < clients; i++ {
		go func() {
			conn, err := net.DialTimeout("tcp", proxy.Addr().String(), time.Second)
			if err != nil {
				done <- -1
				return
			}
			defer conn.Close()
			start := time.Now()
			// Keep the request direction busy forever; only the proxy's
			// cross-direction teardown can end this loop.
			for {
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				if _, err := conn.Write([]byte("ping\r\n")); err != nil {
					done <- time.Since(start)
					return
				}
				time.Sleep(idle / 5)
			}
		}()
	}
	for i := 0; i < clients; i++ {
		took := <-done
		if took < 0 {
			t.Fatal("client dial failed")
		}
		// The write failure must arrive promptly after the response-side
		// idle fires — not at some much later request-side timeout (which
		// the constant writing suppresses entirely).
		if took > 10*idle {
			t.Errorf("client stranded for %v after response-side idle of %v", took, idle)
		}
	}

	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	// goleak-style check: both relay directions of every connection ended.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseGoroutines+4 {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseGoroutines+4 {
		buf := make([]byte, 1<<16)
		t.Errorf("relay goroutines leaked: %d now vs %d at start\n%s",
			g, baseGoroutines, buf[:runtime.Stack(buf, true)])
	}
	st := proxy.Stats()
	if st.Active != 0 {
		t.Errorf("active = %d after teardown, want 0", st.Active)
	}
}

// TestControllerConcurrentStress hammers the controller itself — no
// sockets: parallel snapshot readers (Pick/Route), parallel sample
// observers, concurrent flow-closes, tick-driven snapshot publication, and
// health-eject flips, all at once under the race detector. Every loaded
// snapshot must be internally consistent: picks in range, route results
// honoring that snapshot's eject set.
func TestControllerConcurrentStress(t *testing.T) {
	la, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:  []string{"b0", "b1", "b2", "b3"},
		Alpha:     0.10,
		TableSize: 211,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := control.NewController(la, control.ControllerConfig{
		Shards:   4,
		Interval: 200 * time.Microsecond,
	})
	ctrl.Start()

	const n = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Health flipper: eject and restore backends, forcing immediate
	// republishes that race the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				// Restore everything so the final assertions see a fully
				// healthy pool.
				for b := 0; b < n; b++ {
					ctrl.SetEjected(b, false)
				}
				return
			default:
			}
			ctrl.SetEjected(i%n, i%3 == 0)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Readers + observers + closers.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := packet.FlowKey{SrcPort: uint16(w), Proto: packet.ProtoTCP}
			for i := 0; i < 3000; i++ {
				key.DstPort = uint16(i)
				now := time.Duration(i) * time.Microsecond
				switch i % 4 {
				case 0:
					if b := ctrl.Pick(key, now); b < 0 || b >= n {
						t.Errorf("pick out of range: %d", b)
						return
					}
				case 1:
					b, _ := ctrl.Route(key, now)
					if b >= n {
						t.Errorf("route out of range: %d", b)
						return
					}
					if s := ctrl.Snapshot(); b >= 0 && s != nil {
						// A routed backend must be healthy in *some* recent
						// snapshot; with the flipper racing we only check
						// range and that -1 implies a fully ejected view.
						_ = s
					}
				case 2:
					ctrl.ObserveSharded(uint64(w)<<32|uint64(i), i%n, now, time.Millisecond)
				case 3:
					ctrl.FlowClosed(i%n, now)
				}
			}
		}(w)
	}

	// Let the background ticker publish while everything runs.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	ctrl.Close()

	if ctrl.Dropped() != 0 {
		t.Errorf("dropped %d samples; aggregation must be lossless", ctrl.Dropped())
	}
	if ctrl.Delivered() != 8*3000/4 {
		t.Errorf("delivered %d, want %d", ctrl.Delivered(), 8*3000/4)
	}
	if ctrl.Generation() == 0 {
		t.Error("no snapshot was ever published")
	}

	// Property: with the world quiesced, snapshot picks equal direct policy
	// picks for every key — the snapshot is the policy's table, verbatim.
	for i := 0; i < 2000; i++ {
		key := packet.FlowKey{SrcPort: uint16(i), DstPort: uint16(i >> 8), Proto: packet.ProtoTCP}
		var want int
		ctrl.Do(func(p control.Policy) { want = p.Pick(key, 0) })
		if got := ctrl.Pick(key, 0); got != want {
			t.Fatalf("snapshot pick %d != direct policy pick %d for key %v", got, want, key)
		}
		if got, fb := ctrl.Route(key, 0); got != want || fb {
			t.Fatalf("healthy route = (%d,%v), want (%d,false)", got, fb, want)
		}
	}
}

package lbproxy

import (
	"io"
	"net"
	"sync/atomic"
	"time"

	"inbandlb/internal/packet"
)

// relay is the per-connection state shared by the two direction loops.
//
// Teardown contract: a *clean* EOF on one direction preserves half-close
// semantics — the FIN is propagated with CloseWrite and the peer direction
// keeps relaying until its own EOF. *Any other* exit (idle-deadline
// expiry, reset, write failure) calls abort, which closes both
// connections at once so the peer direction unblocks immediately instead
// of sitting until its own deadline. The CAS makes abort idempotent; both
// loops may race into it.
type relay struct {
	p              *Proxy
	client, server net.Conn
	backend        int
	hash           uint64
	key            packet.FlowKey

	aborted atomic.Bool
	// reuseWanted is set by the request loop on a clean client EOF when
	// the server connection is a candidate for the dial pool; it flips the
	// response loop's deadline arming to the short PoolQuiesce grace.
	reuseWanted atomic.Bool
	// recycled is set by the response loop when the quiesce grace expired
	// in silence: the server connection is drained and may be pooled.
	recycled atomic.Bool
}

// abort tears down both directions at once.
func (st *relay) abort() {
	if st.aborted.CompareAndSwap(false, true) {
		_ = st.client.Close()
		_ = st.server.Close()
	}
}

// armRequest bounds client-side silence with the idle deadline.
func (st *relay) armRequest() { st.p.armIdle(st.client) }

// armResponse bounds server-side silence. Once the client has cleanly
// finished (reuseWanted), the deadline drops to the PoolQuiesce grace:
// any response byte re-arms the grace, and a full grace of silence means
// the exchange is over and the connection can be pooled.
func (st *relay) armResponse() {
	if st.reuseWanted.Load() {
		_ = st.server.SetReadDeadline(time.Now().Add(st.p.poolQuiesce()))
		return
	}
	st.p.armIdle(st.server)
}

// armReuse flips the response direction into quiesce mode. Setting the
// deadline here (from the request goroutine) wakes a response read that
// is already parked, so the grace starts counting immediately.
func (st *relay) armReuse() {
	st.reuseWanted.Store(true)
	_ = st.server.SetReadDeadline(time.Now().Add(st.p.poolQuiesce()))
}

// wantRecycle reports whether the server connection should be offered
// back to the dial pool instead of half-closed after a clean client EOF.
func (st *relay) wantRecycle() bool {
	return st.p.pool != nil && !st.aborted.Load()
}

// runRequest relays client→server, feeding every chunk arrival to the
// estimator. pending is a first chunk the pooled-validation phase read
// but could not write (its connection was swapped); firstDone means the
// first chunk was fully relayed there; firstErr is the validation read's
// terminal result, if any.
func (st *relay) runRequest(firstDone bool, pending []byte, firstErr error) {
	p := st.p
	if len(pending) > 0 {
		p.sysWrites.Add(1)
		if _, werr := st.server.Write(pending); werr != nil {
			p.reportRelayErr(st.backend, werr)
			st.abort()
			return
		}
		firstDone = true
	}
	err, writeSide := firstErr, false
	if err == nil {
		err, writeSide = st.relayBytes(st.server, st.client, true, firstDone, st.armRequest)
	}
	if err == io.EOF && !writeSide && !st.aborted.Load() {
		// Clean client EOF: either hand the server connection toward the
		// pool (quiesce grace) or forward the FIN and let the response
		// direction finish on its own.
		if st.wantRecycle() {
			st.armReuse()
		} else {
			closeWrite(st.server)
		}
		return
	}
	if writeSide {
		p.reportRelayErr(st.backend, err) // server write failed: backend evidence
	}
	st.abort() // client-side failure or idle expiry: unblock the peer now
}

// runResponse relays server→client blind — no estimator timestamps, as
// under DSR — and owns the pool-recycle verdict.
func (st *relay) runResponse() {
	p := st.p
	err, writeSide := st.relayBytes(st.client, st.server, false, true, st.armResponse)
	if err == io.EOF && !writeSide && !st.aborted.Load() {
		// Server finished sending: propagate the FIN, request direction
		// drains on its own clock. (A pooled conn that EOFs is dead — no
		// recycle on this path.)
		closeWrite(st.client)
		return
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() &&
		st.reuseWanted.Load() && !st.aborted.Load() {
		// A full PoolQuiesce of silence after the client's clean EOF: the
		// exchange is over and the server connection is drained. Mark it
		// poolable; handle() does the actual checkin.
		st.recycled.Store(true)
		closeWrite(st.client)
		return
	}
	if !writeSide {
		p.reportRelayErr(st.backend, err) // read failure/idle expiry on the backend
	}
	st.abort()
}

// relayBytes moves bytes src→dst until EOF or error. When observeDir is
// set, each chunk arrival is observed into the estimator (the request
// direction). Unless firstDone, the first chunk goes through the
// userspace buffer — that is where first-byte timestamps and the pooled
// path's validation semantics live — and only the remainder is eligible
// for the zero-copy splice path. writeSide reports whether the returned
// error came from dst.
func (st *relay) relayBytes(dst, src net.Conn, observeDir, firstDone bool, arm func()) (error, bool) {
	p := st.p

	var onChunk func()
	if observeDir {
		onChunk = func() { p.observe(st.hash, st.key, st.backend) }
	}

	// The splice path needs raw fd access on both ends; chaos wrappers and
	// net.Pipe test conns fall through to the copy loop.
	useSplice := false
	var dstRaw, srcRaw rawConner
	if p.cfg.Splice && spliceAvailable() {
		var ok1, ok2 bool
		dstRaw, ok1 = dst.(*net.TCPConn)
		srcRaw, ok2 = src.(*net.TCPConn)
		useSplice = ok1 && ok2
	}

	// The copy buffer is taken lazily: a relay that stays on the splice
	// path end to end never touches the buffer pool at all.
	var bufp *[]byte
	defer func() {
		if bufp != nil {
			p.putBuf(bufp)
		}
	}()

	first := !firstDone
	for {
		if !first && useSplice {
			handled, err, writeSide := p.spliceStream(dstRaw, srcRaw, arm, onChunk)
			if handled {
				return err, writeSide
			}
			useSplice = false // unsupported here: copy loop from a clean stream
		}
		arm()
		if bufp == nil {
			bufp = p.getBuf()
		}
		buf := *bufp
		n, rerr := src.Read(buf)
		p.sysReads.Add(1)
		if n > 0 {
			if onChunk != nil {
				onChunk()
			}
			p.sysWrites.Add(1)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return werr, true
			}
		}
		if rerr != nil {
			return rerr, false
		}
		first = false
	}
}

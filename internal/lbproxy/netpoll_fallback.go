//go:build !linux

package lbproxy

import (
	"net"
	"time"

	"inbandlb/internal/packet"
)

// Non-Linux builds have no epoll: Config.Netpoll is accepted but inert, and
// every connection stays on the goroutine-per-connection relay path. This
// mirrors splice_fallback.go's shape so shared code compiles everywhere.

type npShard struct{}

func (p *Proxy) netpollInit() {}

func (p *Proxy) netpollStop() {}

func (p *Proxy) netpollStats() []NetpollShardStats { return nil }

func (p *Proxy) netpollHandoff(client, server net.Conn, backend, acceptor int,
	hash uint64, key packet.FlowKey, charged, fromPool bool, born time.Time) bool {
	return false
}

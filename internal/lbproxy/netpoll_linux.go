//go:build linux

package lbproxy

import (
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"inbandlb/internal/netpoll"
	"inbandlb/internal/packet"
)

// Event-driven dataplane: with Config.Netpoll, each acceptor shard owns one
// internal/netpoll poller (an edge-triggered epoll loop plus a timing wheel),
// and every relayed connection becomes one compact heap-allocated state
// machine (npRelay) instead of two blocked goroutines. The per-connection
// states mirror the goroutine path exactly:
//
//	awaiting-first-byte ──client chunk──▶ relaying (validation write for
//	   │                                  pooled conns; first chunk always
//	   │ idle timer                       through userspace: first-byte
//	   ▼                                  observation + estimator sample)
//	teardown ◀─error/idle─ relaying ──clean client EOF──▶ draining
//	                           │                             │ quiesce
//	                           └──clean server EOF──▶ FIN    ▼ silence
//	                               to client, drain      recycle into pool
//
// All relay state is owned by the poller's loop goroutine — readiness
// callbacks, posted tasks, and wheel timers are serialized there — so the
// state machine uses plain fields, no locks, no atomics. Raw socket I/O goes
// through syscall.RawConn.Control (never RawConn.Read/Write, which would
// park the loop on the runtime netpoller): Control refcounts the fd against
// a concurrent Close from the proxy's force-close sweep, and every syscall
// inside is nonblocking, so the loop never sleeps in I/O.
//
// Copy buffers and splice pipes are attached lazily per readiness event and
// released before every park, exactly like the goroutine path: an idle
// connection pins its npRelay (~a few hundred bytes) and two registered fds,
// nothing else — versus two goroutine stacks plus their relay frames.
//
// Estimator equivalence: the first request chunk stays in userspace
// (first-byte observation, pooled-conn validation), every later
// request-direction readiness event fires ObserveHashed once (copy chunk or
// splice batch — the same granularity as one Read on the goroutine path),
// and the response direction stays timestamp-free. Teardown settles the same
// accounting as handle(): exactly one of PerBackend/DialErrors per handed-off
// connection, FlowClosed only while charged, ForgetHashed always.

// npPumpBudget bounds chunks moved per pump invocation so one hot connection
// cannot starve its shard; an exhausted pump reposts itself (edge-triggered
// epoll will not re-fire for data that already arrived).
const npPumpBudget = 32

// npShard pairs one poller with its loop-owned set of live relays (the set
// exists so shutdown can finalize relays that are idle and will never see
// another readiness event).
type npShard struct {
	pol  *netpoll.Poller
	live map[*npRelay]struct{}
}

// npEnd is one side of a relay: the connection, its raw-syscall handle, and
// the cached fd (used only for epoll registration bookkeeping — all I/O
// re-enters through rc.Control, which guards against fd reuse after Close).
type npEnd struct {
	conn       net.Conn
	rc         syscall.RawConn
	fd         int
	registered bool
}

// newNPEnd wraps a connection for raw readiness-driven I/O. Only *net.TCPConn
// qualifies — chaos wrappers and pipe test conns make the caller fall back to
// the goroutine path.
func newNPEnd(c net.Conn) (*npEnd, bool) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return nil, false
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return nil, false
	}
	e := &npEnd{conn: c, rc: rc, fd: -1}
	if cerr := rc.Control(func(fd uintptr) { e.fd = int(fd) }); cerr != nil || e.fd < 0 {
		return nil, false
	}
	return e, true
}

// npRelay is the per-connection state machine. Every field is loop-owned.
type npRelay struct {
	p        *Proxy
	shard    *npShard
	cEnd     *npEnd
	sEnd     *npEnd // nil while a revalidation redial is in flight
	backend  int
	acceptor int
	hash     uint64
	key      packet.FlowKey
	born     time.Time

	fromPool        bool
	charged         bool // policy holds an open-flow debit for backend
	counted         bool // committed to PerBackend/Active
	validated       bool // pooled first-write verdict settled (or not pooled)
	revalidating    bool // redial helper goroutine in flight; pumps are parked
	reuseWanted     bool // clean client EOF with the server pool-eligible
	recycled        bool // quiesce elapsed in silence: server conn poolable
	finalized       bool
	dialErrTerminal bool // revalidation exhausted every backend: DialErrors bucket

	req, resp npDir
}

// npDir is one relay direction's pump state.
type npDir struct {
	rel       *npRelay
	src, dst  *npEnd
	observe   bool // request direction: chunk arrivals feed the estimator
	first     bool // next chunk is the stream's first (userspace, validation)
	done      bool
	moved     bool // any byte ever spliced on this stream (fallback gate)
	splice    bool // splice still eligible for this direction
	waitWrite bool // parked on dst EPOLLOUT

	buf    *[]byte // lazy copy buffer; released before every park
	pend   []byte  // written-but-blocked tail (aliases buf, or a revalidation chunk)
	pp     *spipe  // lazy splice pipe; released before every park
	inPipe int     // bytes sitting in pp, not yet spliced out

	idle *netpoll.Timer // idle deadline / quiesce grace on the wheel
}

// netpollInit creates one poller per acceptor shard. Any failure (including
// the process-wide ENOSYS latch) leaves p.np nil and the proxy on the
// goroutine-per-connection dataplane.
func (p *Proxy) netpollInit() {
	if !netpoll.Available() {
		return
	}
	shards := make([]*npShard, 0, p.cfg.Acceptors)
	for i := 0; i < p.cfg.Acceptors; i++ {
		pol, err := netpoll.New(netpoll.Config{})
		if err != nil {
			for _, s := range shards {
				_ = s.pol.Close()
			}
			return
		}
		shards = append(shards, &npShard{pol: pol, live: make(map[*npRelay]struct{})})
	}
	p.np = shards
}

// netpollStop finalizes every live relay (idle ones never get another event,
// so shutdown must visit them) and closes the pollers. Runs after wg.Wait —
// every handoff Post happened-before this — and before ctrl.Close, so the
// final controller flush sees every sample.
func (p *Proxy) netpollStop() {
	for _, s := range p.np {
		s := s
		s.pol.Post(func() {
			for rel := range s.live {
				rel.finalize()
			}
		})
		_ = s.pol.Close()
	}
}

// netpollStats snapshots per-shard poller counters (nil when the event
// dataplane is off).
func (p *Proxy) netpollStats() []NetpollShardStats {
	if len(p.np) == 0 {
		return nil
	}
	out := make([]NetpollShardStats, len(p.np))
	for i, s := range p.np {
		st := s.pol.Stats()
		out[i] = NetpollShardStats{
			Wakeups:       st.Wakeups,
			TimerFires:    st.TimerFires,
			RegisteredFDs: st.Registered,
		}
	}
	return out
}

// netpollHandoff moves a routed connection pair onto the acceptor's poller
// shard. Returns false when the event path cannot take it (netpoll off,
// non-TCP ends from chaos wrappers or tests) — the caller continues on the
// goroutine path with nothing consumed. On true, ownership of both
// connections and all remaining accounting belongs to the poller loop.
func (p *Proxy) netpollHandoff(client, server net.Conn, backend, acceptor int,
	hash uint64, key packet.FlowKey, charged, fromPool bool, born time.Time) bool {
	if len(p.np) == 0 {
		return false
	}
	cEnd, ok := newNPEnd(client)
	if !ok {
		return false
	}
	sEnd, ok := newNPEnd(server)
	if !ok {
		return false
	}
	shard := p.np[acceptor%len(p.np)]
	rel := &npRelay{
		p: p, shard: shard, cEnd: cEnd, sEnd: sEnd,
		backend: backend, acceptor: acceptor, hash: hash, key: key,
		born: born, fromPool: fromPool, charged: charged,
		validated: !fromPool,
	}
	splice := p.cfg.Splice && spliceAvailable()
	rel.req = npDir{rel: rel, src: cEnd, dst: sEnd, observe: true, first: true, splice: splice}
	rel.resp = npDir{rel: rel, src: sEnd, dst: cEnd, splice: splice}
	shard.pol.Post(rel.start)
	return true
}

// start runs on the loop: registers fds, commits accounting for non-pooled
// conns (pooled ones commit when validation settles, like handle does), and
// runs the initial pumps — edge-triggered registration reports an edge for
// already-ready fds, but a direct pump is the guarantee.
func (rel *npRelay) start() {
	rel.shard.live[rel] = struct{}{}
	if !rel.fromPool {
		rel.commit(rel.backend)
	}
	if err := rel.shard.pol.Register(rel.cEnd.fd, rel.onClientEvent); err != nil {
		rel.finalize() // fd already closed (shutdown race) or epoll pressure
		return
	}
	rel.cEnd.registered = true
	if !rel.fromPool && !rel.registerServer() {
		return
	}
	rel.req.rearmIdle()
	rel.req.pump()
}

// registerServer attaches the server end to the poller. For pooled conns
// this is deferred until validation settles, so a stale pooled socket's
// noise cannot reach the response pump before the goroutine path would have
// started its response loop. Returns false if the relay died.
func (rel *npRelay) registerServer() bool {
	if rel.sEnd.registered {
		return true
	}
	if err := rel.shard.pol.Register(rel.sEnd.fd, rel.onServerEvent); err != nil {
		rel.finalize()
		return false
	}
	rel.sEnd.registered = true
	rel.resp.rearmIdle()
	rel.resp.pump()
	return !rel.finalized
}

func (rel *npRelay) onClientEvent(ev netpoll.Event) {
	if rel.finalized {
		return
	}
	if ev.Writable && rel.resp.waitWrite {
		rel.resp.pump()
	}
	if ev.Readable && !rel.finalized {
		rel.req.pump()
	}
}

func (rel *npRelay) onServerEvent(ev netpoll.Event) {
	if rel.finalized {
		return
	}
	if ev.Writable && rel.req.waitWrite {
		rel.req.pump()
	}
	if ev.Readable && !rel.finalized {
		rel.resp.pump()
	}
}

// commit lands the connection in PerBackend and the live gauges — the same
// point of no return as handle()'s post-validation counter block.
func (rel *npRelay) commit(backend int) {
	p := rel.p
	rel.backend = backend
	p.ctrl.ReportDialSuccess(backend)
	p.perBackend[backend].Add(1)
	p.active.Add(1)
	rel.counted = true
}

// pump is the readiness engine for one direction: flush whatever write was
// blocked, then move chunks until EAGAIN, EOF, error, a blocked write, or
// budget exhaustion (then repost — ET delivers no reminder edges).
func (d *npDir) pump() {
	rel := d.rel
	if d.done || rel.finalized || rel.revalidating {
		return
	}
	if !d.flushPending() {
		return
	}
	for budget := npPumpBudget; budget > 0; budget-- {
		if d.done || rel.finalized || rel.revalidating {
			return
		}
		if d.splice && !d.first && spliceAvailable() {
			if !d.pumpSplice() {
				return
			}
			continue
		}
		if !d.pumpCopy() {
			return
		}
	}
	rel.shard.pol.Post(d.pump)
}

// pumpSplice moves one zero-copy chunk src→pipe→dst. Returns false when the
// pump must stop (parked, blocked, EOF, error); switching splice off (first
// splice says "not here") returns true so the copy loop takes over from a
// clean stream.
func (d *npDir) pumpSplice() bool {
	rel := d.rel
	p := rel.p
	d.releaseBuf() // the first-chunk buffer, once the stream goes zero-copy
	if d.pp == nil {
		if d.pp = getPipe(); d.pp == nil {
			d.splice = false // fd exhaustion: copy path
			return true
		}
	}
	var n int64
	var errno error
	cerr := d.src.rc.Control(func(fd uintptr) {
		for {
			n, errno = syscall.Splice(int(fd), nil, d.pp.w, nil, spliceChunk, spliceFlags)
			if errno != syscall.EINTR {
				return
			}
		}
	})
	p.sysSplices.Add(1)
	if cerr != nil {
		d.releasePipe()
		d.srcFailed(net.ErrClosed)
		return false
	}
	if errno == syscall.EAGAIN {
		d.releasePipe() // park with nothing pinned
		return false
	}
	if errno != nil {
		if !d.moved && spliceFallbackErrno(errno) {
			if errno == syscall.ENOSYS || errno == syscall.EPERM {
				spliceBroken.Store(true)
			}
			d.releasePipe()
			d.splice = false
			return true // nothing consumed: copy loop from a clean stream
		}
		d.releasePipe()
		d.srcFailed(errno)
		return false
	}
	if n == 0 {
		d.releasePipe()
		d.srcEOF()
		return false
	}
	d.moved = true
	d.inPipe = int(n)
	d.chunkArrived()
	return d.flushPipe()
}

// pumpCopy moves one userspace chunk src→dst (the first-chunk path and the
// splice fallback). Returns false when the pump must stop.
func (d *npDir) pumpCopy() bool {
	p := d.rel.p
	if d.buf == nil {
		d.buf = p.getBuf()
	}
	n, again, err := d.rawRead(*d.buf)
	if again {
		d.releaseBuf() // park with nothing pinned
		return false
	}
	if err != nil {
		d.releaseBuf()
		if err == io.EOF {
			d.srcEOF()
		} else {
			d.srcFailed(err)
		}
		return false
	}
	chunk := (*d.buf)[:n]
	if d.first {
		return d.firstChunk(chunk)
	}
	d.chunkArrived()
	return d.writeChunk(chunk)
}

// firstChunk relays the stream's first request chunk through userspace —
// the first-byte estimator observation and the pooled path's validation
// write live here, exactly as on the goroutine path.
func (d *npDir) firstChunk(b []byte) bool {
	rel := d.rel
	p := rel.p
	d.first = false
	ts := p.now() // arrival time, attributed after the write settles
	d.rearmIdle()
	if rel.fromPool && !rel.validated {
		n, blocked, err := d.rawWrite(b)
		if err != nil {
			rel.beginRevalidate(b, ts)
			return false
		}
		rel.validated = true
		p.observeAt(rel.hash, rel.key, rel.backend, ts)
		rel.commit(rel.backend)
		if !rel.registerServer() {
			return false
		}
		if blocked {
			d.pend = b[n:]
			d.waitWrite = true
			return false
		}
		return true
	}
	p.observeAt(rel.hash, rel.key, rel.backend, ts)
	return d.writeChunk(b)
}

// chunkArrived timestamps a request-direction arrival into the estimator
// (once per readiness event — identical granularity to one Read on the
// goroutine path) and re-arms this direction's deadline.
func (d *npDir) chunkArrived() {
	rel := d.rel
	if d.observe {
		rel.p.observe(rel.hash, rel.key, rel.backend)
	}
	d.rearmIdle()
}

// writeChunk forwards a userspace chunk, parking on EPOLLOUT if dst blocks
// (the unwritten tail stays pinned in buf until flushPending drains it).
func (d *npDir) writeChunk(b []byte) bool {
	n, blocked, err := d.rawWrite(b)
	if err != nil {
		d.dstFailed(err)
		return false
	}
	if blocked {
		d.pend = b[n:]
		d.waitWrite = true
		return false
	}
	return true
}

// flushPending resumes whatever a previous pump left blocked: first the
// splice pipe, then the userspace tail. True means the direction is clear
// to read again.
func (d *npDir) flushPending() bool {
	if d.inPipe > 0 && !d.flushPipe() {
		return false
	}
	if len(d.pend) > 0 {
		n, blocked, err := d.rawWrite(d.pend)
		d.pend = d.pend[n:]
		if err != nil {
			d.dstFailed(err)
			return false
		}
		if blocked {
			d.waitWrite = true
			return false
		}
		d.pend = nil
		d.waitWrite = false
		d.releaseBuf()
	}
	return true
}

// flushPipe drains the splice pipe into dst, parking on EPOLLOUT if dst
// blocks (the pipe stays attached: its contents are unrecoverable).
func (d *npDir) flushPipe() bool {
	p := d.rel.p
	for d.inPipe > 0 {
		var n int64
		var errno error
		cerr := d.dst.rc.Control(func(fd uintptr) {
			for {
				n, errno = syscall.Splice(d.pp.r, nil, int(fd), nil, d.inPipe, spliceFlags)
				if errno != syscall.EINTR {
					return
				}
			}
		})
		p.sysSplices.Add(1)
		if cerr != nil {
			d.dstFailed(net.ErrClosed)
			return false
		}
		if errno == syscall.EAGAIN {
			d.waitWrite = true
			return false
		}
		if errno != nil {
			d.dstFailed(errno)
			return false
		}
		if n <= 0 {
			d.dstFailed(io.ErrUnexpectedEOF)
			return false
		}
		d.inPipe -= int(n)
	}
	d.waitWrite = false
	d.releasePipe()
	return true
}

// rawRead does one nonblocking read via Control (EINTR-retried). again=true
// means EAGAIN: park until the next readiness edge.
func (d *npDir) rawRead(buf []byte) (int, bool, error) {
	var n int
	var errno error
	cerr := d.src.rc.Control(func(fd uintptr) {
		for {
			n, errno = syscall.Read(int(fd), buf)
			if errno != syscall.EINTR {
				return
			}
		}
	})
	d.rel.p.sysReads.Add(1)
	if cerr != nil {
		return 0, false, net.ErrClosed
	}
	if errno == syscall.EAGAIN {
		return 0, true, nil
	}
	if errno != nil {
		return 0, false, errno
	}
	if n <= 0 {
		return 0, false, io.EOF
	}
	return n, false, nil
}

// rawWrite writes as much of b as dst accepts without blocking. Returns
// bytes written and whether the socket pushed back (EAGAIN) first.
func (d *npDir) rawWrite(b []byte) (int, bool, error) {
	p := d.rel.p
	total := 0
	blocked := false
	var werr error
	cerr := d.dst.rc.Control(func(fd uintptr) {
		for total < len(b) {
			n, errno := syscall.Write(int(fd), b[total:])
			p.sysWrites.Add(1)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				blocked = true
				return
			}
			if errno != nil {
				werr = errno
				return
			}
			if n <= 0 {
				werr = io.ErrUnexpectedEOF
				return
			}
			total += n
		}
	})
	if cerr != nil && werr == nil {
		werr = net.ErrClosed
	}
	return total, blocked, werr
}

// releaseBuf returns the copy buffer to the pool (pend must be drained).
func (d *npDir) releaseBuf() {
	if d.buf != nil {
		d.rel.p.putBuf(d.buf)
		d.buf = nil
	}
}

// releasePipe returns a drained pipe to the pool, or destroys one holding
// unrecoverable bytes (teardown mid-drain).
func (d *npDir) releasePipe() {
	if d.pp == nil {
		return
	}
	if d.inPipe == 0 {
		putPipe(d.pp)
	} else {
		d.pp.destroy()
	}
	d.pp = nil
	d.inPipe = 0
}

// srcEOF handles a clean EOF, preserving the goroutine path's half-close
// contract: client EOF hands the server toward the pool (quiesce grace) or
// forwards the FIN; server EOF forwards the FIN to the client (a pooled
// conn that EOFs is dead — no recycle on this path).
func (d *npDir) srcEOF() {
	rel := d.rel
	d.done = true
	d.stopTimer()
	if d.observe {
		if rel.fromPool && !rel.validated {
			// Client finished without sending a byte: the pooled conn was
			// never tested. Commit like the goroutine path (its relay loops
			// would see immediate EOF after the counters commit).
			rel.validated = true
			rel.commit(rel.backend)
			if !rel.registerServer() {
				return
			}
		}
		if rel.wantRecycle() {
			rel.reuseWanted = true
			rel.resp.rearmIdle() // flips the response deadline to quiesce
		} else {
			closeWrite(rel.sEnd.conn)
		}
	} else {
		closeWrite(rel.cEnd.conn)
	}
	rel.maybeFinish()
}

// srcFailed handles a read-side failure. Response-direction read failures
// are backend evidence for the passive detector (mirroring runResponse);
// request-direction ones are client-side noise.
func (d *npDir) srcFailed(err error) {
	rel := d.rel
	if !d.observe {
		rel.p.reportRelayErr(rel.backend, err)
	}
	rel.finalize()
}

// dstFailed handles a write-side failure. Request-direction write failures
// hit the server (backend evidence, mirroring runRequest's writeSide);
// response-direction ones hit the client.
func (d *npDir) dstFailed(err error) {
	rel := d.rel
	if d.observe {
		rel.p.reportRelayErr(rel.backend, err)
	}
	rel.finalize()
}

// wantRecycle mirrors relay.wantRecycle: offer the drained server conn back
// to the pool unless the response side already died or the proxy is closing.
func (rel *npRelay) wantRecycle() bool {
	return rel.p.pool != nil && !rel.resp.done && !rel.p.closed.Load()
}

func (rel *npRelay) maybeFinish() {
	if rel.req.done && rel.resp.done {
		rel.finalize()
	}
}

// rearmIdle (re-)arms this direction's wheel timer: the idle deadline, or —
// response direction after a clean client EOF — the PoolQuiesce grace.
func (d *npDir) rearmIdle() {
	rel := d.rel
	var to time.Duration
	if !d.observe && rel.reuseWanted {
		to = rel.p.poolQuiesce()
	} else {
		to = rel.p.cfg.IdleTimeout
		if to <= 0 {
			return
		}
	}
	if d.idle == nil {
		d.idle = rel.shard.pol.AfterFunc(to, d.onTimeout)
	} else {
		rel.shard.pol.ResetTimer(d.idle, to)
	}
}

func (d *npDir) stopTimer() {
	if d.idle != nil {
		d.rel.shard.pol.StopTimer(d.idle)
	}
}

// onTimeout fires for an expired idle deadline or an elapsed quiesce grace.
func (d *npDir) onTimeout() {
	rel := d.rel
	if rel.finalized || d.done {
		return
	}
	if !d.observe && rel.reuseWanted {
		if len(d.pend) > 0 || d.inPipe > 0 {
			d.rearmIdle() // response tail still in flight to the client
			return
		}
		// A full PoolQuiesce of silence after the client's clean EOF: the
		// exchange is over and the server connection is drained.
		rel.recycled = true
		closeWrite(rel.cEnd.conn)
		d.done = true
		rel.maybeFinish()
		return
	}
	if !d.observe {
		// Backend went silent past the idle bound: detector evidence, like
		// runResponse's read-deadline expiry.
		rel.p.reportRelayErr(rel.backend, os.ErrDeadlineExceeded)
	}
	rel.finalize()
}

// beginRevalidate handles a pooled connection dying on its first write:
// accounted exactly like a failed dial (ReportDialError, one fresh redial to
// the same backend, then the failover path). The blocking dials run on a
// one-shot helper goroutine — never the poller loop — and the relay stays
// parked (revalidating) until the verdict is posted back. Charge ownership
// moves to the helper so a concurrent teardown cannot double-settle it.
func (rel *npRelay) beginRevalidate(chunk []byte, ts time.Duration) {
	p := rel.p
	rel.revalidating = true
	pending := append([]byte(nil), chunk...)
	rel.req.releaseBuf()
	dead := rel.sEnd // never registered: pooled ends register post-validation
	rel.sEnd = nil
	rel.req.dst, rel.resp.src = nil, nil
	p.connMu.Lock()
	delete(p.open, dead.conn)
	p.connMu.Unlock()
	_ = dead.conn.Close()
	p.poolFirstWriteFails.Add(1)
	p.ctrl.ReportDialError(rel.backend, ts)
	rel.fromPool, rel.born = false, time.Time{}
	backend := rel.backend
	charged := rel.charged
	rel.charged = false
	go func() {
		server, newBackend := p.redial(backend, &charged)
		rel.shard.pol.Post(func() {
			rel.finishRevalidate(server, newBackend, charged, pending, ts)
		})
	}()
}

// redial makes one fresh dial to the same backend — the pooled conn's death
// is often stale news — then takes the failover path.
func (p *Proxy) redial(backend int, charged *bool) (net.Conn, int) {
	fresh, err := p.dial(p.cfg.Backends[backend], p.cfg.DialTimeout)
	if err == nil {
		return fresh, backend
	}
	return p.dialFailover(backend, charged)
}

// finishRevalidate resumes (or buries) a relay whose pooled server died on
// first write. Runs on the loop.
func (rel *npRelay) finishRevalidate(server net.Conn, backend int, charged bool,
	pending []byte, ts time.Duration) {
	p := rel.p
	if rel.finalized {
		// Torn down while the helper dialed (idle expiry, client reset,
		// shutdown): settle what the helper still owns.
		if charged {
			p.ctrl.FlowClosed(backend, p.now())
		}
		if server != nil {
			_ = server.Close()
		}
		return
	}
	rel.revalidating = false
	rel.charged = charged
	if server == nil {
		p.dialErrors.Add(1) // terminal: no backend accepted the dial
		rel.dialErrTerminal = true
		rel.finalize()
		return
	}
	p.connMu.Lock()
	p.open[server] = struct{}{}
	p.connMu.Unlock()
	if p.closed.Load() {
		_ = server.Close()
	}
	end, ok := newNPEnd(server)
	if !ok {
		// The replacement lacks raw access (chaos wrapper): this relay
		// cannot continue event-driven. Count it, then retire it like an
		// immediate relay failure on the fresh conn.
		rel.sEnd = &npEnd{conn: server, fd: -1}
		rel.req.dst, rel.resp.src = rel.sEnd, rel.sEnd
		rel.validated = true
		p.observeAt(rel.hash, rel.key, backend, ts)
		rel.commit(backend)
		rel.finalize()
		return
	}
	rel.sEnd = end
	rel.req.dst, rel.resp.src = end, end
	rel.validated = true
	p.observeAt(rel.hash, rel.key, backend, ts)
	rel.commit(backend)
	// The swapped connection still owes the first chunk.
	n, blocked, err := rel.req.rawWrite(pending)
	if err != nil {
		p.reportRelayErr(backend, err)
		rel.finalize()
		return
	}
	if !rel.registerServer() {
		return
	}
	if blocked {
		rel.req.pend = pending[n:]
		rel.req.waitWrite = true
		return
	}
	rel.req.rearmIdle()
	rel.req.pump()
}

// finalize is the single teardown point: idempotent, loop-only. It releases
// lazily-attached resources, unregisters both fds, settles the accounting
// identity (exactly one of PerBackend/DialErrors for every handed-off
// connection; FlowClosed only while charged; ForgetHashed always), and
// retires or recycles the server connection.
func (rel *npRelay) finalize() {
	if rel.finalized {
		return
	}
	rel.finalized = true
	p := rel.p
	delete(rel.shard.live, rel)
	rel.req.cleanup()
	rel.resp.cleanup()
	if rel.cEnd.registered {
		rel.shard.pol.Unregister(rel.cEnd.fd)
		rel.cEnd.registered = false
	}
	if rel.sEnd != nil && rel.sEnd.registered {
		rel.shard.pol.Unregister(rel.sEnd.fd)
		rel.sEnd.registered = false
	}
	if !rel.counted && !rel.dialErrTerminal {
		// Relay died before its commit point (register failure, shutdown):
		// the goroutine path would have committed before its loops errored
		// out, so the connection still lands in PerBackend.
		rel.commit(rel.backend)
	}
	p.flows.ForgetHashed(rel.hash, rel.key)
	if rel.charged {
		p.ctrl.FlowClosed(rel.backend, p.now())
		rel.charged = false
	}
	if rel.counted {
		p.active.Add(-1)
	}
	p.connMu.Lock()
	delete(p.open, rel.cEnd.conn)
	if rel.sEnd != nil {
		delete(p.open, rel.sEnd.conn)
	}
	p.connMu.Unlock()
	if rel.sEnd != nil {
		if rel.recycled && !p.closed.Load() && p.pool != nil &&
			p.pool.Put(rel.backend, rel.acceptor, rel.sEnd.conn, rel.born) {
			p.poolRecycled.Add(1)
		} else {
			_ = rel.sEnd.conn.Close()
		}
	}
	_ = rel.cEnd.conn.Close()
}

// cleanup releases one direction's lazily-attached resources.
func (d *npDir) cleanup() {
	d.done = true
	d.stopTimer()
	d.pend = nil
	d.releaseBuf()
	d.releasePipe()
}

package lbproxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"inbandlb/internal/auditlog"
	"inbandlb/internal/control"
)

// The admin surface is the operational control plane for a running proxy:
//
//	GET  /metrics    Prometheus text exposition: every Stats counter plus
//	                 per-backend routing state (connections, down bit,
//	                 health-state, admission fraction, weight) and audit
//	                 sink health (records written, records shed).
//	GET  /decisions  The most recent audit-log decisions (JSON, newest
//	                 last), straight from the async sink's in-memory tail —
//	                 available even while the on-disk log is mid-write.
//	                 ?n=K bounds the count (default 100).
//	GET  /config     The live passive-detector configuration.
//	POST /config     Live reload: JSON fields overlay the current detector
//	                 configuration and apply without restarting the proxy or
//	                 resetting in-flight recovery state machines.
//
// All of it is stdlib-only, served off the data path: /metrics reads
// atomics and one RCU snapshot, /decisions copies a bounded tail under its
// own mutex, /config serializes with the controller like any other
// control-plane caller.

// auditTailer is the slice of the async audit sink the admin endpoints
// need. *auditlog.Log implements it; other sinks just get "audit tail
// unavailable".
type auditTailer interface {
	Tail(n int) []auditlog.Record
	Sheds() uint64
	Written() uint64
}

// SetDetectorConfig live-reloads the passive detector's tuning; see
// control.(*Controller).SetDetectorConfig. Returns false for a no-op
// (disabling an already-disabled detector).
func (p *Proxy) SetDetectorConfig(cfg control.DetectorConfig) bool {
	return p.ctrl.SetDetectorConfig(cfg)
}

// DetectorConfig returns the live detector configuration (defaults
// applied) and whether passive detection is enabled.
func (p *Proxy) DetectorConfig() (control.DetectorConfig, bool) {
	return p.ctrl.DetectorConfigView()
}

// AdminHandler serves the admin surface documented above.
func (p *Proxy) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/decisions", p.handleDecisions)
	mux.HandleFunc("/config", p.handleConfig)
	return mux
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.writeMetrics(w)
}

// metricWriter emits Prometheus text exposition format: one TYPE comment
// per family, then its samples. Write errors on an HTTP response are the
// client's problem; they are ignored.
type metricWriter struct{ w io.Writer }

func (m metricWriter) family(name, help, typ string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m metricWriter) sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(m.w, "%s %s\n", name, formatMetricValue(v))
		return
	}
	fmt.Fprintf(m.w, "%s{%s} %s\n", name, labels, formatMetricValue(v))
}

// formatMetricValue renders like Prometheus clients do: integers without
// an exponent, everything else in the shortest round-trippable form.
func formatMetricValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *Proxy) writeMetrics(w io.Writer) {
	st := p.Stats()
	m := metricWriter{w}

	m.family("lbproxy_uptime_seconds", "Seconds since the proxy started.", "gauge")
	m.sample("lbproxy_uptime_seconds", "", time.Since(p.start).Seconds())

	counters := []struct {
		name, help string
		v          uint64
	}{
		{"lbproxy_accepted_total", "Connections accepted.", st.Accepted},
		{"lbproxy_dial_errors_total", "Connections that failed every dial attempt.", st.DialErrors},
		{"lbproxy_dropped_total", "Connections dropped for lack of any admitted backend.", st.Dropped},
		{"lbproxy_fallbacks_total", "Connections rerouted away from an ejected backend.", st.Fallbacks},
		{"lbproxy_failovers_total", "Connections rescued by the post-dial-error retry.", st.Failovers},
		{"lbproxy_samples_total", "Latency samples emitted by the in-band estimator.", st.Samples},
		{"lbproxy_samples_delivered_total", "Estimator samples merged into the policy by control ticks.", st.SamplesDelivered},
		{"lbproxy_relay_reads_total", "read(2) calls on the copy relay path.", st.RelayReads},
		{"lbproxy_relay_writes_total", "write(2) calls on the copy relay path.", st.RelayWrites},
		{"lbproxy_relay_splices_total", "splice(2) calls on the zero-copy relay path.", st.RelaySplices},
		{"lbproxy_pool_hits_total", "Dial-pool checkouts served from an idle connection.", st.PoolHits},
		{"lbproxy_pool_misses_total", "Dial-pool checkouts that required a fresh dial.", st.PoolMisses},
		{"lbproxy_pool_dead_total", "Pooled connections found dead at checkout.", st.PoolDead},
		{"lbproxy_pool_first_write_fails_total", "Pooled connections that died on first write.", st.PoolFirstWriteFails},
		{"lbproxy_pool_recycled_total", "Backend connections recycled into the pool.", st.PoolRecycled},
		{"lbproxy_congestion_samples_total", "Successful TCP_INFO reads on relayed backend connections.", st.CongSamples},
		{"lbproxy_congestion_retrans_total", "Retransmitted segments attributed to backends.", st.CongRetrans},
		{"lbproxy_snapshot_generation", "Routing-snapshot publications (monotonic).", p.ctrl.Generation()},
	}
	for _, c := range counters {
		typ := "counter"
		if c.name == "lbproxy_snapshot_generation" {
			typ = "gauge" // monotonic, but not a resettable counter family
		}
		m.family(c.name, c.help, typ)
		m.sample(c.name, "", float64(c.v))
	}

	m.family("lbproxy_active_connections", "Currently relayed connections.", "gauge")
	m.sample("lbproxy_active_connections", "", float64(st.Active))
	m.family("lbproxy_tracked_flows", "Live flow-table population.", "gauge")
	m.sample("lbproxy_tracked_flows", "", float64(p.flows.Len()))

	m.family("lbproxy_backend_connections_total", "Connections routed per backend.", "counter")
	for i, v := range st.PerBackend {
		m.sample("lbproxy_backend_connections_total", backendLabels(i, p.cfg.Backends[i]), float64(v))
	}
	m.family("lbproxy_backend_down", "1 when the backend admits no traffic (probe or passive ejection).", "gauge")
	for i, down := range st.Down {
		m.sample("lbproxy_backend_down", backendLabels(i, p.cfg.Backends[i]), boolMetric(down))
	}
	m.family("lbproxy_backend_health_state", "1 for the backend's current passive-detector state.", "gauge")
	for i, h := range st.Health {
		m.sample("lbproxy_backend_health_state",
			backendLabels(i, p.cfg.Backends[i])+`,state="`+h+`"`, 1)
	}
	m.family("lbproxy_backend_admission", "Admitted fraction of the backend's hash range (0-1).", "gauge")
	for i := range st.PerBackend {
		m.sample("lbproxy_backend_admission", backendLabels(i, p.cfg.Backends[i]), p.ctrl.Admission(i))
	}
	m.family("lbproxy_backend_ejections_total", "Passive-detector ejections per backend.", "counter")
	for i := range st.PerBackend {
		m.sample("lbproxy_backend_ejections_total", backendLabels(i, p.cfg.Backends[i]),
			float64(p.ctrl.Ejections(i)))
	}
	if snap := p.ctrl.Snapshot(); snap != nil && snap.Weights() != nil {
		m.family("lbproxy_backend_weight", "Published routing weight per backend.", "gauge")
		for i, wv := range snap.Weights() {
			m.sample("lbproxy_backend_weight", backendLabels(i, p.cfg.Backends[i]), wv)
		}
	}

	if tail, ok := p.cfg.Audit.(auditTailer); ok {
		m.family("lbproxy_audit_written_total", "Decision records written to the audit log.", "counter")
		m.sample("lbproxy_audit_written_total", "", float64(tail.Written()))
		m.family("lbproxy_audit_sheds_total", "Decision records shed because the audit ring was full.", "counter")
		m.sample("lbproxy_audit_sheds_total", "", float64(tail.Sheds()))
	}

	np := st.Netpoll
	if len(np) > 0 {
		m.family("lbproxy_netpoll_wakeups_total", "epoll_wait wakeups per poller shard.", "counter")
		for i, s := range np {
			m.sample("lbproxy_netpoll_wakeups_total", `shard="`+strconv.Itoa(i)+`"`, float64(s.Wakeups))
		}
		m.family("lbproxy_netpoll_registered_fds", "Registered fds per poller shard.", "gauge")
		for i, s := range np {
			m.sample("lbproxy_netpoll_registered_fds", `shard="`+strconv.Itoa(i)+`"`, float64(s.RegisteredFDs))
		}
	}
}

func backendLabels(i int, addr string) string {
	return `backend="` + strconv.Itoa(i) + `",addr="` + addr + `"`
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// decisionJSON is one audit record rendered for operators: enum fields as
// names, durations in seconds/milliseconds.
type decisionJSON struct {
	Seq       uint64    `json:"seq"`
	AtSeconds float64   `json:"at_seconds"`
	Kind      string    `json:"kind"`
	Cause     string    `json:"cause,omitempty"`
	Backend   int32     `json:"backend"`
	Gen       uint64    `json:"generation"`
	From      string    `json:"from,omitempty"`
	To        string    `json:"to,omitempty"`
	Healthy   int32     `json:"healthy"`
	Fails     int32     `json:"fails,omitempty"`
	MeanMs    float64   `json:"mean_ms,omitempty"`
	MedianMs  float64   `json:"median_ms,omitempty"`
	Retrans   int64     `json:"retrans,omitempty"`
	DupAcks   int64     `json:"dup_acks,omitempty"`
	ZeroWins  int64     `json:"zero_windows,omitempty"`
	Weights   []float64 `json:"weights,omitempty"`
}

func renderDecision(rec auditlog.Record) decisionJSON {
	d := decisionJSON{
		Seq:       rec.Seq,
		AtSeconds: rec.At.Seconds(),
		Kind:      rec.Kind.String(),
		Backend:   rec.Backend,
		Gen:       rec.Gen,
		Healthy:   rec.Healthy,
		Fails:     rec.Fails,
		MeanMs:    float64(rec.Mean) / 1e6,
		MedianMs:  float64(rec.Median) / 1e6,
		Retrans:   rec.Retrans,
		DupAcks:   rec.DupAcks,
		ZeroWins:  rec.ZeroWins,
		Weights:   rec.Weights,
	}
	if rec.Cause != auditlog.CauseNone {
		d.Cause = rec.Cause.String()
	}
	if rec.Kind == auditlog.KindTransition || rec.Kind == auditlog.KindManual {
		d.From = control.HealthState(rec.From).String()
		d.To = control.HealthState(rec.To).String()
	}
	return d
}

func (p *Proxy) handleDecisions(w http.ResponseWriter, r *http.Request) {
	tail, ok := p.cfg.Audit.(auditTailer)
	if !ok {
		http.Error(w, "audit tail unavailable: proxy not started with an async audit log", http.StatusNotFound)
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	recs := tail.Tail(n)
	out := struct {
		Written   uint64         `json:"written"`
		Sheds     uint64         `json:"sheds"`
		Decisions []decisionJSON `json:"decisions"`
	}{Written: tail.Written(), Sheds: tail.Sheds(), Decisions: make([]decisionJSON, 0, len(recs))}
	for _, rec := range recs {
		out.Decisions = append(out.Decisions, renderDecision(rec))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// detectorConfigJSON is the wire form of control.DetectorConfig: durations
// in milliseconds so reload payloads are plain numbers.
type detectorConfigJSON struct {
	Enabled           bool    `json:"enabled"`
	FailureThreshold  int     `json:"failure_threshold"`
	OutlierFactor     float64 `json:"outlier_factor"`
	OutlierTicks      int     `json:"outlier_ticks"`
	StarvationTicks   int     `json:"starvation_ticks"`
	MinPoolSamples    int64   `json:"min_pool_samples"`
	BackoffInitialMs  float64 `json:"backoff_initial_ms"`
	BackoffMaxMs      float64 `json:"backoff_max_ms"`
	BackoffJitter     float64 `json:"backoff_jitter"`
	HalfOpenFraction  float64 `json:"half_open_fraction"`
	HalfOpenTicks     int     `json:"half_open_ticks"`
	SuccessThreshold  int     `json:"success_threshold"`
	SlowStartInitial  float64 `json:"slow_start_initial"`
	SlowStartTicks    int     `json:"slow_start_ticks"`
	CongestionPerTick int64   `json:"congestion_per_tick"`
	CongestionTicks   int     `json:"congestion_ticks"`
	CongestionFactor  float64 `json:"congestion_factor"`
	CongestionAdmit   float64 `json:"congestion_admit"`
	CongestionClear   int     `json:"congestion_clear"`
}

func toConfigJSON(cfg control.DetectorConfig, enabled bool) detectorConfigJSON {
	return detectorConfigJSON{
		Enabled:           enabled,
		FailureThreshold:  cfg.FailureThreshold,
		OutlierFactor:     cfg.OutlierFactor,
		OutlierTicks:      cfg.OutlierTicks,
		StarvationTicks:   cfg.StarvationTicks,
		MinPoolSamples:    cfg.MinPoolSamples,
		BackoffInitialMs:  float64(cfg.BackoffInitial) / 1e6,
		BackoffMaxMs:      float64(cfg.BackoffMax) / 1e6,
		BackoffJitter:     cfg.BackoffJitter,
		HalfOpenFraction:  cfg.HalfOpenFraction,
		HalfOpenTicks:     cfg.HalfOpenTicks,
		SuccessThreshold:  cfg.SuccessThreshold,
		SlowStartInitial:  cfg.SlowStartInitial,
		SlowStartTicks:    cfg.SlowStartTicks,
		CongestionPerTick: cfg.CongestionPerTick,
		CongestionTicks:   cfg.CongestionTicks,
		CongestionFactor:  cfg.CongestionFactor,
		CongestionAdmit:   cfg.CongestionAdmit,
		CongestionClear:   cfg.CongestionClear,
	}
}

func (j detectorConfigJSON) toConfig(seed int64) control.DetectorConfig {
	return control.DetectorConfig{
		Enabled:           j.Enabled,
		FailureThreshold:  j.FailureThreshold,
		OutlierFactor:     j.OutlierFactor,
		OutlierTicks:      j.OutlierTicks,
		StarvationTicks:   j.StarvationTicks,
		MinPoolSamples:    j.MinPoolSamples,
		BackoffInitial:    time.Duration(j.BackoffInitialMs * 1e6),
		BackoffMax:        time.Duration(j.BackoffMaxMs * 1e6),
		BackoffJitter:     j.BackoffJitter,
		HalfOpenFraction:  j.HalfOpenFraction,
		HalfOpenTicks:     j.HalfOpenTicks,
		SuccessThreshold:  j.SuccessThreshold,
		SlowStartInitial:  j.SlowStartInitial,
		SlowStartTicks:    j.SlowStartTicks,
		CongestionPerTick: j.CongestionPerTick,
		CongestionTicks:   j.CongestionTicks,
		CongestionFactor:  j.CongestionFactor,
		CongestionAdmit:   j.CongestionAdmit,
		CongestionClear:   j.CongestionClear,
		Seed:              seed,
	}
}

func (p *Proxy) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		// Overlay semantics: the request body is decoded on top of the
		// current live configuration, so a reload names only the knobs it
		// changes. (An omitted "enabled" keeps the detector on.)
		cur, enabled := p.ctrl.DetectorConfigView()
		body := toConfigJSON(cur, enabled)
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
			http.Error(w, "bad config: "+err.Error(), http.StatusBadRequest)
			return
		}
		p.ctrl.SetDetectorConfig(body.toConfig(cur.Seed))
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		return
	}
	cfg, enabled := p.ctrl.DetectorConfigView()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(toConfigJSON(cfg, enabled))
}

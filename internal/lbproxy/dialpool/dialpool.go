// Package dialpool maintains per-backend free lists of idle backend
// connections so that a new client connection does not always pay a fresh
// dial (TCP connect, handshake RTT, congestion-window slow start) before
// its first byte can be relayed.
//
// The pool is striped: each backend's free list is split into Stripes
// independent LIFO stacks, and the proxy pins each acceptor loop to one
// stripe index. A connection checked in by acceptor i is preferentially
// checked out by acceptor i again, so in steady state a stripe's mutex and
// free-list cache lines are touched by one goroutine and never bounce
// between acceptors. Checkout falls back to stealing from sibling stripes
// before declaring a miss, so pinning is a fast path, not a partition.
//
// # Liveness
//
// An idle connection can die silently (backend restart, idle-timeout RST,
// middlebox reap). Every checkout therefore runs one non-blocking 1-byte
// read directly on the raw fd (a past read deadline cannot be used for
// this: Go short-circuits an expired deadline before attempting the read,
// so it would never see a pending EOF):
//
//   - EAGAIN    → no data pending and the socket is open: healthy.
//   - EOF/error → the backend closed it: discard, try the next one.
//   - data      → leftover unconsumed response bytes: the previous relay
//     ended mid-message, so the connection's framing is unknown. Unusable;
//     discard. This is also the safety net that keeps a misframed
//     connection from ever being handed to a second client.
//
// The probe costs one read syscall on a ready socket — far cheaper than
// the connect/handshake it saves — and it never blocks.
//
// A probe can only prove the connection was alive at checkout; the backend
// can still die between checkout and the first relayed byte. The proxy
// treats a pooled connection's first-write failure as a dial failure (not
// a relay failure) and retries through its normal dial/failover path, so
// the failure accounting and the passive detector see exactly what they
// would have seen had the dial itself failed.
package dialpool

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// syscallConner matches *net.TCPConn's raw-fd access surface.
type syscallConner interface {
	SyscallConn() (syscall.RawConn, error)
}

// Config parameterizes a Pool.
type Config struct {
	// Backends is the number of backend slots (indexed 0..Backends-1).
	Backends int
	// Stripes is the number of independent free lists per backend; the
	// proxy passes one stripe index per acceptor. Values < 1 mean 1.
	Stripes int
	// MaxIdlePerBackend caps idle connections kept per backend (summed
	// across stripes). Checkins beyond the cap close the connection.
	// Values < 1 mean 1.
	MaxIdlePerBackend int
	// MaxAge evicts a connection once it has been in pool custody this
	// long (measured from its first checkin), bounding how stale a kept
	// connection can get. Zero disables age eviction.
	MaxAge time.Duration
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Stats are cumulative pool counters.
type Stats struct {
	// Hits counts checkouts satisfied from the pool; Misses checkouts
	// that found no usable idle connection (the caller dials fresh).
	Hits, Misses uint64
	// DeadOnCheckout counts idle connections discarded by the checkout
	// probe (closed by the backend, or carrying leftover bytes).
	DeadOnCheckout uint64
	// AgedOut counts connections evicted by MaxAge (at checkout or sweep).
	AgedOut uint64
	// Checkins counts successful returns to the pool; Rejected counts
	// returns closed instead (stripe full or pool closed).
	Checkins, Rejected uint64
}

type idleConn struct {
	c net.Conn
	// born is when the connection first entered pool custody; MaxAge
	// eviction is measured from it.
	born time.Time
}

// stripe is one backend's per-acceptor free list. The padding keeps
// adjacent stripes' mutexes off each other's cache lines, matching the
// aggregator's layout convention.
type stripe struct {
	mu    sync.Mutex
	conns []idleConn // LIFO: most recently used last
	_     [64 - 8]byte
}

// Pool is a striped per-backend idle-connection pool. All methods are safe
// for concurrent use.
type Pool struct {
	cfg       Config
	stripes   []stripe // backend-major: index = backend*cfg.Stripes + stripe
	capPer    int      // per-stripe idle cap
	closed    atomic.Bool
	hits      atomic.Uint64
	misses    atomic.Uint64
	dead      atomic.Uint64
	aged      atomic.Uint64
	checkins  atomic.Uint64
	rejected  atomic.Uint64
	sweepNext atomic.Uint64 // round-robin cursor for incremental Sweep
}

// New creates a pool.
func New(cfg Config) *Pool {
	if cfg.Stripes < 1 {
		cfg.Stripes = 1
	}
	if cfg.MaxIdlePerBackend < 1 {
		cfg.MaxIdlePerBackend = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	capPer := (cfg.MaxIdlePerBackend + cfg.Stripes - 1) / cfg.Stripes
	return &Pool{
		cfg:     cfg,
		stripes: make([]stripe, cfg.Backends*cfg.Stripes),
		capPer:  capPer,
	}
}

// prober is the reusable scratch state for one checkout probe: the 1-byte
// read buffer and the pre-bound read callback, pooled so a probe's only
// allocation is the rawConn that (*net.TCPConn).SyscallConn returns.
type prober struct {
	healthy bool
	b       [1]byte
	fn      func(fd uintptr) bool
}

func (pr *prober) read(fd uintptr) bool {
	_, rerr := syscall.Read(int(fd), pr.b[:])
	pr.healthy = rerr == syscall.EAGAIN
	return true // one-shot: never park waiting for readability
}

var proberPool = sync.Pool{New: func() any {
	pr := &prober{}
	pr.fn = pr.read
	return pr
}}

// probe reports whether an idle connection is still usable: one
// non-blocking 1-byte read on the raw fd must come back EAGAIN. Data,
// EOF, or any other result means the connection is dead or misframed.
// Connections without raw-fd access (test pipes, wrappers) pass
// unprobed — the caller's first-write-failure handling is their safety
// net.
func probe(c net.Conn) bool {
	sc, ok := c.(syscallConner)
	if !ok {
		return true
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	pr := proberPool.Get().(*prober)
	pr.healthy = false
	rerr := raw.Read(pr.fn)
	healthy := pr.healthy
	proberPool.Put(pr)
	return rerr == nil && healthy
}

func (p *Pool) stripeAt(backend, idx int) *stripe {
	return &p.stripes[backend*p.cfg.Stripes+idx%p.cfg.Stripes]
}

// Get checks out an idle connection for backend, preferring the caller's
// own stripe and stealing from siblings before giving up. It returns the
// connection and the time it first entered the pool (for re-checkin), or
// ok=false when the caller should dial fresh.
func (p *Pool) Get(backend, stripeIdx int) (c net.Conn, born time.Time, ok bool) {
	if p.closed.Load() || backend < 0 || backend >= p.cfg.Backends {
		return nil, time.Time{}, false
	}
	if stripeIdx < 0 {
		stripeIdx = -stripeIdx
	}
	for off := 0; off < p.cfg.Stripes; off++ {
		if c, born, ok = p.getFrom(p.stripeAt(backend, stripeIdx+off)); ok {
			p.hits.Add(1)
			return c, born, true
		}
	}
	p.misses.Add(1)
	return nil, time.Time{}, false
}

// getFrom pops LIFO from one stripe until it finds a live connection.
func (p *Pool) getFrom(s *stripe) (net.Conn, time.Time, bool) {
	now := p.cfg.Now()
	for {
		s.mu.Lock()
		n := len(s.conns)
		if n == 0 {
			s.mu.Unlock()
			return nil, time.Time{}, false
		}
		ic := s.conns[n-1]
		s.conns[n-1] = idleConn{}
		s.conns = s.conns[:n-1]
		s.mu.Unlock()

		if p.cfg.MaxAge > 0 && now.Sub(ic.born) > p.cfg.MaxAge {
			p.aged.Add(1)
			_ = ic.c.Close()
			continue
		}
		// Probe outside the stripe lock: it costs a syscall.
		if !probe(ic.c) {
			p.dead.Add(1)
			_ = ic.c.Close()
			continue
		}
		return ic.c, ic.born, true
	}
}

// Put checks a connection in for reuse. born is the value Get returned for
// a reused connection, or the zero time for one the caller dialed fresh
// (its age starts now). Put reports whether the connection was kept; when
// it returns false the connection has been closed.
func (p *Pool) Put(backend, stripeIdx int, c net.Conn, born time.Time) bool {
	if c == nil {
		return false
	}
	now := p.cfg.Now()
	if born.IsZero() {
		born = now
	}
	if p.closed.Load() || backend < 0 || backend >= p.cfg.Backends ||
		(p.cfg.MaxAge > 0 && now.Sub(born) > p.cfg.MaxAge) {
		p.rejected.Add(1)
		_ = c.Close()
		return false
	}
	// A checked-in connection must present no artificial deadline to its
	// next checkout probe.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		p.rejected.Add(1)
		_ = c.Close()
		return false
	}
	if stripeIdx < 0 {
		stripeIdx = -stripeIdx
	}
	s := p.stripeAt(backend, stripeIdx)
	s.mu.Lock()
	if len(s.conns) >= p.capPer {
		s.mu.Unlock()
		p.rejected.Add(1)
		_ = c.Close()
		return false
	}
	s.conns = append(s.conns, idleConn{c: c, born: born})
	s.mu.Unlock()
	p.checkins.Add(1)
	// Closing raced the checkin: make sure nothing is stranded.
	if p.closed.Load() {
		p.drain(s)
	}
	return true
}

// Sweep evicts MaxAge-expired connections from one stripe per call (the
// proxy calls it from its periodic sweep loop, mirroring the flow table's
// incremental sweeper). It reports how many connections it closed.
func (p *Pool) Sweep() int {
	if p.cfg.MaxAge <= 0 || len(p.stripes) == 0 {
		return 0
	}
	s := &p.stripes[int(p.sweepNext.Add(1))%len(p.stripes)]
	now := p.cfg.Now()
	var expired []net.Conn
	s.mu.Lock()
	kept := s.conns[:0]
	for _, ic := range s.conns {
		if now.Sub(ic.born) > p.cfg.MaxAge {
			expired = append(expired, ic.c)
		} else {
			kept = append(kept, ic)
		}
	}
	for i := len(kept); i < len(s.conns); i++ {
		s.conns[i] = idleConn{}
	}
	s.conns = kept
	s.mu.Unlock()
	for _, c := range expired {
		p.aged.Add(1)
		_ = c.Close()
	}
	return len(expired)
}

// Idle returns the number of idle connections currently pooled for backend
// (all stripes).
func (p *Pool) Idle(backend int) int {
	if backend < 0 || backend >= p.cfg.Backends {
		return 0
	}
	n := 0
	for i := 0; i < p.cfg.Stripes; i++ {
		s := p.stripeAt(backend, i)
		s.mu.Lock()
		n += len(s.conns)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		DeadOnCheckout: p.dead.Load(),
		AgedOut:        p.aged.Load(),
		Checkins:       p.checkins.Load(),
		Rejected:       p.rejected.Load(),
	}
}

// Close closes every idle connection and makes all future checkins close
// their argument. In-flight checkouts are unaffected (their connections
// are owned by the caller until Put).
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for i := range p.stripes {
		p.drain(&p.stripes[i])
	}
}

func (p *Pool) drain(s *stripe) {
	s.mu.Lock()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, ic := range conns {
		_ = ic.c.Close()
	}
}

package dialpool

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// acceptSink returns a TCP listener whose accepted connections are kept
// open (and optionally handed to the caller) until the test ends.
func acceptSink(t *testing.T) (net.Listener, func() net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 64)
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()
	t.Cleanup(func() {
		_ = lis.Close()
		for {
			select {
			case c := <-conns:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return lis, func() net.Conn {
		select {
		case c := <-conns:
			return c
		case <-time.After(2 * time.Second):
			t.Fatal("no accepted conn")
			return nil
		}
	}
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPoolHitReturnsSameConn(t *testing.T) {
	lis, _ := acceptSink(t)
	p := New(Config{Backends: 1, Stripes: 1, MaxIdlePerBackend: 4})
	defer p.Close()

	c := dialT(t, lis.Addr().String())
	if !p.Put(0, 0, c, time.Time{}) {
		t.Fatal("checkin rejected")
	}
	got, _, ok := p.Get(0, 0)
	if !ok {
		t.Fatal("expected pool hit")
	}
	if got != c {
		t.Error("hit returned a different conn")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Checkins != 1 {
		t.Errorf("stats = %+v", st)
	}
	_ = got.Close()
}

func TestPoolMissWhenEmpty(t *testing.T) {
	p := New(Config{Backends: 2, Stripes: 2, MaxIdlePerBackend: 4})
	defer p.Close()
	if _, _, ok := p.Get(1, 0); ok {
		t.Fatal("hit on empty pool")
	}
	if st := p.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

// TestPoolCheckoutProbe is the liveness table: each case prepares a pooled
// connection in a particular state and says whether checkout may hand it
// out. This is the unit-level half of the dead-pooled-backend story (the
// proxy integration test asserts the failover + stats identity).
func TestPoolCheckoutProbe(t *testing.T) {
	cases := []struct {
		name string
		// prepare returns a conn to pool after putting it in the tested
		// state (and anything to wait for).
		prepare func(t *testing.T, lis net.Listener, accept func() net.Conn) net.Conn
		wantHit bool
	}{
		{
			name: "healthy idle conn",
			prepare: func(t *testing.T, lis net.Listener, accept func() net.Conn) net.Conn {
				c := dialT(t, lis.Addr().String())
				accept()
				return c
			},
			wantHit: true,
		},
		{
			name: "backend closed the conn",
			prepare: func(t *testing.T, lis net.Listener, accept func() net.Conn) net.Conn {
				c := dialT(t, lis.Addr().String())
				s := accept()
				_ = s.Close()
				time.Sleep(20 * time.Millisecond) // let the FIN land
				return c
			},
			wantHit: false,
		},
		{
			name: "leftover unread response bytes",
			prepare: func(t *testing.T, lis net.Listener, accept func() net.Conn) net.Conn {
				c := dialT(t, lis.Addr().String())
				s := accept()
				if _, err := s.Write([]byte("stale")); err != nil {
					t.Fatal(err)
				}
				time.Sleep(20 * time.Millisecond)
				return c
			},
			wantHit: false,
		},
		{
			name: "conn closed locally while pooled",
			prepare: func(t *testing.T, lis net.Listener, accept func() net.Conn) net.Conn {
				c := dialT(t, lis.Addr().String())
				accept()
				_ = c.Close()
				return c
			},
			wantHit: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lis, accept := acceptSink(t)
			p := New(Config{Backends: 1, Stripes: 1, MaxIdlePerBackend: 4})
			defer p.Close()
			c := tc.prepare(t, lis, accept)
			// Put probes nothing; the state is only examined at checkout.
			p.Put(0, 0, c, time.Time{})
			got, _, ok := p.Get(0, 0)
			if ok != tc.wantHit {
				t.Fatalf("hit = %v, want %v", ok, tc.wantHit)
			}
			if ok {
				_ = got.Close()
				return
			}
			st := p.Stats()
			if st.DeadOnCheckout+st.Rejected == 0 {
				t.Errorf("dead conn not accounted: %+v", st)
			}
		})
	}
}

func TestPoolStripePinningAndStealing(t *testing.T) {
	lis, _ := acceptSink(t)
	p := New(Config{Backends: 1, Stripes: 4, MaxIdlePerBackend: 8})
	defer p.Close()

	// Checkin on stripe 2 only.
	c := dialT(t, lis.Addr().String())
	p.Put(0, 2, c, time.Time{})

	// A checkout on stripe 0 must steal it rather than miss.
	got, _, ok := p.Get(0, 0)
	if !ok || got != c {
		t.Fatalf("steal failed: ok=%v", ok)
	}
	_ = got.Close()
}

func TestPoolMaxIdleCap(t *testing.T) {
	lis, _ := acceptSink(t)
	p := New(Config{Backends: 1, Stripes: 1, MaxIdlePerBackend: 2})
	defer p.Close()
	for i := 0; i < 4; i++ {
		p.Put(0, 0, dialT(t, lis.Addr().String()), time.Time{})
	}
	if n := p.Idle(0); n != 2 {
		t.Errorf("idle = %d, want cap 2", n)
	}
	if st := p.Stats(); st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}
}

func TestPoolMaxAgeEviction(t *testing.T) {
	lis, _ := acceptSink(t)
	clock := time.Unix(1000, 0)
	p := New(Config{
		Backends: 1, Stripes: 1, MaxIdlePerBackend: 4,
		MaxAge: time.Minute,
		Now:    func() time.Time { return clock },
	})
	defer p.Close()

	p.Put(0, 0, dialT(t, lis.Addr().String()), time.Time{}) // born at clock
	clock = clock.Add(2 * time.Minute)

	// Checkout-side eviction.
	if _, _, ok := p.Get(0, 0); ok {
		t.Fatal("aged conn handed out")
	}
	if st := p.Stats(); st.AgedOut != 1 {
		t.Errorf("agedOut = %d, want 1", st.AgedOut)
	}

	// Sweep-side eviction.
	p.Put(0, 0, dialT(t, lis.Addr().String()), time.Time{})
	clock = clock.Add(2 * time.Minute)
	evicted := 0
	for i := 0; i < 4; i++ { // sweep is incremental: one stripe per call
		evicted += p.Sweep()
	}
	if evicted != 1 || p.Idle(0) != 0 {
		t.Errorf("sweep evicted %d, idle %d", evicted, p.Idle(0))
	}

	// A checkin past its age is refused outright.
	old := dialT(t, lis.Addr().String())
	if p.Put(0, 0, old, clock.Add(-2*time.Minute)) {
		t.Error("over-age checkin accepted")
	}
}

func TestPoolCloseDrains(t *testing.T) {
	lis, accept := acceptSink(t)
	p := New(Config{Backends: 1, Stripes: 2, MaxIdlePerBackend: 4})
	c := dialT(t, lis.Addr().String())
	s := accept()
	p.Put(0, 0, c, time.Time{})
	p.Close()
	// The pooled side was closed: the backend end sees EOF.
	_ = s.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Error("pooled conn still open after Close")
	}
	// Checkins after Close close their argument.
	c2 := dialT(t, lis.Addr().String())
	if p.Put(0, 0, c2, time.Time{}) {
		t.Error("checkin accepted after Close")
	}
	if _, _, ok := p.Get(0, 0); ok {
		t.Error("checkout succeeded after Close")
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	lis, _ := acceptSink(t)
	p := New(Config{Backends: 2, Stripes: 4, MaxIdlePerBackend: 8})
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b := (w + i) % 2
				c, born, ok := p.Get(b, w)
				if !ok {
					var err error
					c, err = net.DialTimeout("tcp", lis.Addr().String(), time.Second)
					if err != nil {
						t.Error(err)
						return
					}
					born = time.Time{}
				}
				p.Put(b, w, c, born)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits == 0 {
		t.Error("no hits under churn")
	}
	total := 0
	for b := 0; b < 2; b++ {
		total += p.Idle(b)
	}
	if total == 0 {
		t.Error("nothing pooled after churn")
	}
	if testing.Verbose() {
		fmt.Printf("churn stats: %+v idle=%d\n", st, total)
	}
}

package lbproxy

// Perf-gate hooks: internal/perf asserts the steady-state relay allocates
// nothing, which means the buffer pool and the splice pipe pool must both
// recycle. These exported cycles exist so those gates can exercise one
// checkout/checkin round trip without opening sockets.

// BufCycle runs one relay-buffer pool checkout/checkin. Steady state this
// is allocation-free; the internal/perf gate pins that.
func (p *Proxy) BufCycle() {
	b := p.getBuf()
	p.putBuf(b)
}

// PipeCycle runs one splice-pipe pool checkout/checkin and reports whether
// the platform has a splice pipe pool at all (false on non-Linux builds or
// when pipe creation fails). Steady state this is allocation-free.
func PipeCycle() bool { return pipeCycle() }

// Package dst is a deterministic simulation-testing harness in the
// FoundationDB style: from a single integer seed it derives a random
// topology, a random closed-loop workload mix, and a random fault
// schedule; runs the whole stack (client → LB → control plane → servers)
// on the simulated clock; and checks invariant oracles every tick —
// conservation identities, routing-snapshot sanity, estimator bounds, and
// post-fault liveness. Every run is a pure function of its Scenario, so a
// violation found anywhere (a nightly seed sweep, a -race shard, a
// laptop) replays everywhere, and a bisecting shrinker reduces the fault
// schedule to a minimal counterexample with a copy-pasteable repro line.
package dst

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"inbandlb/internal/tcpsim"
)

// FaultKind enumerates the fault primitives the generator draws from.
// Latency steps land on the LB→server link (faults.Step); the connection
// kinds land on the server's ConnFaults schedule (faults.Outage /
// faults.Flaky / faults.Reset), exactly the knobs the chaos wrappers use
// against live listeners.
type FaultKind uint8

const (
	// FaultLatencyStep inflates one server's path delay during the window.
	FaultLatencyStep FaultKind = iota
	// FaultOutageRefuse RSTs every connection to the server (fail-fast).
	FaultOutageRefuse
	// FaultOutageBlackhole silently drops everything (fail-silent — the
	// hard case, visible only as the in-band sample stream going quiet).
	FaultOutageBlackhole
	// FaultFlaky fails a deterministic P-fraction of flows with an RST.
	FaultFlaky
	// FaultReset kills accepted flows mid-stream after AfterBytes.
	FaultReset
	// FaultBandwidthCollapse throttles one LB→server link to Rate
	// bytes/second with a bounded queue: requests serialize slowly, tail
	// drops begin, and the client's RTO fires — retransmissions the LB's
	// congestion tracker sees long before latency medians move.
	FaultBandwidthCollapse
	// FaultIncast batches one server's responses into back-to-back bursts
	// (coalesced for Extra per window), driving the client's receive
	// buffer into zero-window advertisements.
	FaultIncast
	// FaultQueueRamp inflates one server's service time along a linear ramp
	// (queue buildup rather than a step), aging older in-flight requests
	// into dup-ACK territory while throughput only sags gradually.
	FaultQueueRamp
	// FaultHotKey turns a Fraction of client connections hot (think time
	// divided by Factor) for the window — zipfian-style skew concentrating
	// load on whichever backends those flows are pinned to.
	FaultHotKey
	// FaultHerd aborts every client connection at Start: a thundering-herd
	// reconnect storm through the standard abort/reopen path.
	FaultHerd
	// FaultAutoscale removes the backend from the pool at Start and returns
	// it at End (SetEjected veto both ways) — autoscale churn exercising
	// mid-run Maglev disruption and slow-start re-admission.
	FaultAutoscale
)

// String names the kind for repro logs.
func (k FaultKind) String() string {
	switch k {
	case FaultLatencyStep:
		return "latency-step"
	case FaultOutageRefuse:
		return "outage-refuse"
	case FaultOutageBlackhole:
		return "outage-blackhole"
	case FaultFlaky:
		return "flaky"
	case FaultReset:
		return "reset"
	case FaultBandwidthCollapse:
		return "bandwidth-collapse"
	case FaultIncast:
		return "incast"
	case FaultQueueRamp:
		return "queue-ramp"
	case FaultHotKey:
		return "hot-key"
	case FaultHerd:
		return "herd"
	case FaultAutoscale:
		return "autoscale"
	}
	return "unknown"
}

// FaultSpec is one scheduled fault. It is plain data — independent of the
// seed that produced it — so the shrinker can delete entries and bisect
// windows while everything else about the scenario stays fixed.
type FaultSpec struct {
	Kind   FaultKind
	Server int
	Start  time.Duration
	End    time.Duration
	// Extra is the injected path delay (FaultLatencyStep only).
	Extra time.Duration
	// P is the failure probability (FaultFlaky only).
	P float64
	// AfterBytes is the mid-stream kill threshold (FaultReset only).
	AfterBytes int
	// Seed drives the flaky schedule's per-flow coin.
	Seed uint64
	// Rate is the collapsed line rate in bytes/s (FaultBandwidthCollapse).
	Rate float64
	// Rise is the ramp duration before the plateau (FaultQueueRamp).
	Rise time.Duration
	// Fraction is the share of connections turned hot (FaultHotKey).
	Fraction float64
	// Factor divides hot connections' think time (FaultHotKey).
	Factor int
}

// String renders the spec for violation reports and repro logs.
func (f FaultSpec) String() string {
	s := fmt.Sprintf("%v@server-%d[%v,%v)", f.Kind, f.Server, f.Start, f.End)
	switch f.Kind {
	case FaultLatencyStep:
		s += fmt.Sprintf("+%v", f.Extra)
	case FaultFlaky:
		s += fmt.Sprintf(" p=%.2f", f.P)
	case FaultReset:
		s += fmt.Sprintf(" after=%dB", f.AfterBytes)
	case FaultBandwidthCollapse:
		s += fmt.Sprintf(" rate=%.0fB/s", f.Rate)
	case FaultIncast:
		s += fmt.Sprintf(" hold=%v", f.Extra)
	case FaultQueueRamp:
		s += fmt.Sprintf("+%v rise=%v", f.Extra, f.Rise)
	case FaultHotKey:
		s += fmt.Sprintf(" frac=%.2f x%d", f.Fraction, f.Factor)
	}
	return s
}

// Scenario is a fully materialized test case: topology, workload, control
// settings, and fault schedule. Generate fills one deterministically from
// a seed; the shrinker edits Faults and calls finalize to recompute the
// derived timeline. Running a Scenario twice yields byte-identical trace
// digests.
type Scenario struct {
	Seed     int64
	Backends int

	// Per-server heterogeneity, indexed by backend.
	ServiceMedian []time.Duration // log-normal service-time median
	ServiceSigma  []float64       // log-normal spread
	Workers       []int           // service concurrency
	QueueLimit    []int           // 0 = unbounded
	BaseDelay     []time.Duration // static extra LB→server path delay

	// Path delays and client-link bandwidth (0 = infinite).
	ClientToLB     time.Duration
	LBToServer     time.Duration
	ServerToClient time.Duration
	LinkRate       float64

	// Workload is the closed-loop request mix (connection churn supplies
	// the quasi-open-loop arrival process; Pipeline > 1 supplies bursts;
	// Keys/KeyZipfS supply skew).
	Workload tcpsim.RequestConfig

	// Control-plane shape. Policy names a registered routing policy
	// (control.PolicyNames); empty selects the paper's latency-aware
	// α-shift controller. Generate never sets it — the field exists so the
	// same seed can replay under any policy (-dst.policy, the arena).
	Policy          string
	ControlInterval time.Duration
	Alpha           float64
	MinWeight       float64
	TableSize       int

	Faults []FaultSpec

	// Congestion enables the transport-distress channel end to end: the
	// workload emits retransmissions / dup-ACKs / zero-windows under
	// pressure, the LB runs its CongestionTracker, and the detector's
	// congestion early-ejection is armed. GenerateCongestion sets it.
	Congestion bool

	// CheckInterval is the oracle cadence.
	CheckInterval time.Duration

	// Derived timeline (finalize).
	FirstFault   time.Duration // earliest fault start; 0 when no faults
	LastFaultEnd time.Duration // latest fault end (warmupEnd when none)
	CleanFrom    time.Duration // all faults over, detector settled
	Duration     time.Duration // run length == the recovery deadline
}

// Generator timeline: faults are confined to a mid-run band so the
// estimator warms up on clean traffic and the tail is long enough for the
// liveness deadline to be meaningful.
const (
	warmupEnd  = 800 * time.Millisecond
	faultUntil = 2600 * time.Millisecond
	// cleanSettle pads the last fault's end before post-fault baselines
	// are taken: in-flight timeouts and backoff timers drain first.
	cleanSettle = 400 * time.Millisecond
)

// recoveryMargin is the seed-derived liveness budget after the last fault
// ends: re-probe backoffs are bounded (≤ 400 ms), but half-open trial
// traffic arrives only when a reopened connection hashes into the trial
// sliver, which thins with pool size — hence the per-backend term.
func recoveryMargin(backends int) time.Duration {
	return 1500*time.Millisecond + time.Duration(backends)*100*time.Millisecond
}

// Generate derives a full scenario from seed. Constraints the oracles
// rely on: every fault window sits inside [warmupEnd, faultUntil); at
// least one backend never receives a connection fault (the pool stays
// routable); the client's request timeout exceeds any honest latency the
// schedule can produce, so only genuine blackholes burn timeouts.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	us := usFn(rng)
	sc := generateBase(rng, seed)
	b := sc.Backends

	// Fault schedule. One backend is protected from connection faults so
	// the detector can never be asked to empty the pool.
	protected := rng.Intn(b)
	nf := 1 + rng.Intn(5)
	for i := 0; i < nf; i++ {
		start := warmupEnd + time.Duration(rng.Int63n(int64(1400*time.Millisecond)))
		length := 150*time.Millisecond + time.Duration(rng.Int63n(int64(850*time.Millisecond)))
		end := start + length
		if end > faultUntil {
			end = faultUntil
		}
		f := FaultSpec{Start: start, End: end, Server: rng.Intn(b)}
		switch r := rng.Intn(100); {
		case r < 30:
			f.Kind = FaultLatencyStep
			f.Extra = us(500, 3500)
		case r < 50:
			f.Kind = FaultOutageRefuse
		case r < 70:
			f.Kind = FaultOutageBlackhole
		case r < 90:
			f.Kind = FaultFlaky
			f.P = 0.05 + 0.30*rng.Float64()
			f.Seed = uint64(rng.Int63())
		default:
			f.Kind = FaultReset
			f.AfterBytes = 256 + rng.Intn(4096)
		}
		if f.Kind != FaultLatencyStep && f.Server == protected {
			f.Server = (f.Server + 1 + rng.Intn(b-1)) % b
		}
		sc.Faults = append(sc.Faults, f)
	}
	sc.finalize()
	return sc
}

// GenerateCongestion derives a congestion-flavored scenario from seed: the
// same base topology and workload distribution as Generate (byte-for-byte
// the same rng draw order, so the two generators agree on everything but
// the fault schedule), plus transport-distress emission knobs and a fault
// schedule drawn exclusively from the six congestion kinds. The scenario
// arms the whole distress channel: client emission, the LB's
// CongestionTracker, and the detector's congestion early-ejection.
func GenerateCongestion(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	us := usFn(rng)
	sc := generateBase(rng, seed)
	sc.Congestion = true
	b := sc.Backends

	// Distress emission knobs. The RTO sits well above any honest RTT the
	// base topology can produce (sub-millisecond paths, sub-millisecond
	// service medians) and well below RequestTimeout (80–200 ms), so
	// retransmissions fire only under genuine queueing and always before
	// the client gives up on the request.
	sc.Workload.RetransmitTimeout = time.Duration(15+rng.Intn(16)) * time.Millisecond
	sc.Workload.DupAckAge = time.Duration(5+rng.Intn(6)) * time.Millisecond
	sc.Workload.ZeroWindowBurst = 6 + rng.Intn(5)

	protected := rng.Intn(b)
	nf := 1 + rng.Intn(4)
	var haveHot, haveAuto bool
	for i := 0; i < nf; i++ {
		start := warmupEnd + time.Duration(rng.Int63n(int64(1400*time.Millisecond)))
		length := 150*time.Millisecond + time.Duration(rng.Int63n(int64(850*time.Millisecond)))
		end := start + length
		if end > faultUntil {
			end = faultUntil
		}
		f := FaultSpec{Start: start, End: end, Server: rng.Intn(b)}
		kind := rng.Intn(6)
		// At most one hot-key and one autoscale window per run: stacked
		// skew windows multiply into starvation, and overlapping pool
		// shrinks could leave nothing routable. The fallback is
		// deterministic and burns no extra draws.
		if (kind == 3 && haveHot) || (kind == 5 && haveAuto) {
			kind = 2
		}
		switch kind {
		case 0:
			f.Kind = FaultBandwidthCollapse
			// 20–80 KB/s against 128 B requests + up-to-4 KB responses:
			// tight enough that a loaded window serializes into RTO range.
			f.Rate = 20e3 + 60e3*rng.Float64()
		case 1:
			f.Kind = FaultIncast
			f.Extra = time.Duration(2+rng.Intn(7)) * time.Millisecond
		case 2:
			f.Kind = FaultQueueRamp
			f.Extra = us(1500, 6000)
			f.Rise = (end - start) / 2
		case 3:
			f.Kind = FaultHotKey
			f.Fraction = 0.1 + 0.2*rng.Float64()
			f.Factor = 4 + rng.Intn(5)
			haveHot = true
		case 4:
			f.Kind = FaultHerd
		case 5:
			f.Kind = FaultAutoscale
			haveAuto = true
		}
		// Collapse starves its target's sample stream and autoscale removes
		// it outright; keeping both off the protected backend keeps the
		// pool routable, same contract as Generate.
		if (f.Kind == FaultBandwidthCollapse || f.Kind == FaultAutoscale) && f.Server == protected {
			f.Server = (f.Server + 1 + rng.Intn(b-1)) % b
		}
		sc.Faults = append(sc.Faults, f)
	}
	sc.finalize()
	return sc
}

// usFn returns a microsecond-range draw helper bound to rng.
func usFn(rng *rand.Rand) func(lo, hi int) time.Duration {
	return func(lo, hi int) time.Duration {
		return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Microsecond
	}
}

// generateBase draws everything except the fault schedule: topology,
// per-server heterogeneity, and workload. Both generators share it, and
// the rng draw order here is load-bearing — shrunk-regression seeds and
// the generator-bounds tests replay against the exact sequence, so edits
// must not insert, remove, or reorder draws.
func generateBase(rng *rand.Rand, seed int64) Scenario {
	us := usFn(rng)

	b := 2 + rng.Intn(15) // 2..16
	sc := Scenario{
		Seed:            seed,
		Backends:        b,
		ServiceMedian:   make([]time.Duration, b),
		ServiceSigma:    make([]float64, b),
		Workers:         make([]int, b),
		QueueLimit:      make([]int, b),
		BaseDelay:       make([]time.Duration, b),
		ClientToLB:      us(20, 100),
		LBToServer:      us(20, 100),
		ControlInterval: 2 * time.Millisecond,
		CheckInterval:   10 * time.Millisecond,
		Alpha:           0.05 + 0.10*rng.Float64(),
		MinWeight:       0.02 + 0.03*rng.Float64(),
		TableSize:       1021,
	}
	sc.ServerToClient = sc.ClientToLB + sc.LBToServer
	if rng.Intn(5) < 2 {
		sc.LinkRate = 1e8 * (1 + 9*rng.Float64()) // 100 MB/s .. 1 GB/s
	}
	for i := 0; i < b; i++ {
		sc.ServiceMedian[i] = us(80, 400)
		sc.ServiceSigma[i] = 0.1 + 0.5*rng.Float64()
		sc.Workers[i] = 2 + rng.Intn(7)
		if rng.Intn(5) < 2 {
			// Bounded queue, but deeper than the client's total pipeline
			// capacity so overload shedding needs a fault to happen.
			sc.QueueLimit[i] = 64 + rng.Intn(448)
		}
		sc.BaseDelay[i] = us(0, 200)
	}

	pipeline := 1
	if rng.Intn(4) == 0 {
		pipeline = 2 // bursty mode: paired sends, sub-RTT gaps at the LB
	}
	wl := tcpsim.RequestConfig{
		// Scale concurrency with the pool so every backend sees flows at
		// a usable rate even at 16 backends; below ~1 connection per
		// backend the sample stream is mostly silence and the detector's
		// low-concurrency caveats dominate the run.
		Connections:     b + 2 + rng.Intn(9),
		Pipeline:        pipeline,
		RequestsPerConn: 10 + rng.Intn(21), // 10..30: churn feeds re-routing
		ReopenDelay:     us(100, 600),
		ThinkTime:       us(300, 1200),
		GetFraction:     0.3 + 0.4*rng.Float64(),
		RequestTimeout:  time.Duration(80+rng.Intn(120)) * time.Millisecond,
	}
	wl.ThinkJitter = time.Duration(rng.Int63n(int64(wl.ThinkTime)/2 + 1))
	if rng.Intn(2) == 0 {
		wl.Keys = 64 + rng.Intn(1000)
		if rng.Intn(2) == 0 {
			wl.KeyZipfS = 1.05 + 0.4*rng.Float64()
		}
	}
	sc.Workload = wl
	return sc
}

// finalize recomputes the derived timeline from the current fault list.
// The shrinker calls it after every edit, so shrunk scenarios also shrink
// their run length (faults that end earlier move the deadline up).
func (sc *Scenario) finalize() {
	sc.FirstFault, sc.LastFaultEnd = 0, warmupEnd
	for i, f := range sc.Faults {
		if i == 0 || f.Start < sc.FirstFault {
			sc.FirstFault = f.Start
		}
		if f.End > sc.LastFaultEnd {
			sc.LastFaultEnd = f.End
		}
	}
	sc.CleanFrom = sc.LastFaultEnd + cleanSettle
	sc.Duration = sc.LastFaultEnd + recoveryMargin(sc.Backends)
	// Round up so the last oracle check lands exactly at the end.
	if rem := sc.Duration % sc.CheckInterval; rem != 0 {
		sc.Duration += sc.CheckInterval - rem
	}
}

// PolicyName resolves the scenario's policy, defaulting to the paper's
// latency-aware controller when the field is unset.
func (sc *Scenario) PolicyName() string {
	if sc.Policy == "" {
		return "latency-aware"
	}
	return sc.Policy
}

// cleanAt reports whether t lies outside every fault window with enough
// margin that in-band samples taken at t reflect steady-state latency —
// the gate for the estimator-bounds oracle.
func (sc *Scenario) cleanAt(t time.Duration) bool {
	if t < 300*time.Millisecond {
		return false // estimator still warming up
	}
	if len(sc.Faults) == 0 {
		return true
	}
	if t+50*time.Millisecond < sc.FirstFault {
		return true
	}
	return t >= sc.CleanFrom
}

// connFaultedAt reports whether backend b is under a connection fault
// (refuse/blackhole/flaky/reset) at t.
func (sc *Scenario) connFaultedAt(b int, t time.Duration) bool {
	for _, f := range sc.Faults {
		if f.Kind != FaultLatencyStep && f.Server == b && t >= f.Start && t < f.End {
			return true
		}
	}
	return false
}

// ReproLine renders the exact command that replays this scenario: the
// seed regenerates everything, policy selects the routing policy (empty =
// default), keep selects the (possibly shrunk) fault subset, mutate
// re-enables the deliberately broken controller.
func ReproLine(seed int64, policy string, kept []int, mutated, congestion bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "go test ./internal/dst -run 'TestDST$' -dst.seed=%d", seed)
	if congestion {
		sb.WriteString(" -dst.congestion")
	}
	if policy != "" && policy != "latency-aware" {
		fmt.Fprintf(&sb, " -dst.policy=%s", policy)
	}
	if kept != nil {
		parts := make([]string, len(kept))
		for i, k := range kept {
			parts[i] = fmt.Sprintf("%d", k)
		}
		fmt.Fprintf(&sb, " -dst.keep=%s", strings.Join(parts, ","))
	}
	if mutated {
		sb.WriteString(" -dst.mutate")
	}
	return sb.String()
}

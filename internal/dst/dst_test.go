package dst

import (
	"flag"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The repro contract: a violation anywhere prints
//
//	go test ./internal/dst -run 'TestDST$' -dst.seed=N [-dst.keep=i,j] [-dst.mutate]
//
// and that exact command replays the exact failing run, because the
// scenario is a pure function of the seed and the harness runs entirely
// on the simulated clock.
var (
	seedFlag   = flag.Int64("dst.seed", -1, "run a single DST scenario by seed")
	keepFlag   = flag.String("dst.keep", "", "comma-separated fault indices to keep (with -dst.seed)")
	mutateFlag = flag.Bool("dst.mutate", false, "run with the deliberately broken controller")
	sweepFlag  = flag.Int("dst.sweep", 60, "number of seeds TestDSTSweep covers")
	baseFlag   = flag.Int64("dst.base", 1, "first seed of the sweep")
	policyFlag = flag.String("dst.policy", "", "registered policy to sweep (empty = latency-aware)")
	congFlag   = flag.Bool("dst.congestion", false, "replay a GenerateCongestion scenario (with -dst.seed)")
	congSweep  = flag.Int("dst.congsweep", 40, "number of seeds TestDSTCongestionSweep covers")
)

// runSeed executes one scenario under the named policy (empty = default),
// shrinks on failure, and reports the minimal repro. keep (nil = all)
// selects a fault subset first.
func runSeed(t *testing.T, seed int64, keep []int, policy string, mutated, congestion bool) *Report {
	t.Helper()
	gen := Generate
	if congestion {
		gen = GenerateCongestion
	}
	sc := gen(seed)
	sc.Policy = policy
	if keep != nil {
		sub := make([]FaultSpec, len(keep))
		for i, k := range keep {
			if k < 0 || k >= len(sc.Faults) {
				t.Fatalf("seed %d: -dst.keep index %d outside schedule of %d faults", seed, k, len(sc.Faults))
			}
			sub[i] = sc.Faults[k]
		}
		sc.Faults = sub
		sc.finalize()
	}
	runner := Run
	if mutated {
		trigger, ok := MutationTrigger(gen(seed))
		if !ok {
			t.Fatalf("seed %d: no latency fault tall enough for -dst.mutate", seed)
		}
		runner = func(s Scenario) (*Report, error) { return RunMutated(s, Mutate(trigger)) }
	}
	rep, err := runner(sc)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !rep.Failed() {
		return rep
	}
	for _, v := range rep.Violations {
		t.Errorf("seed %d: %v", seed, v)
	}
	if shrunk := Shrink(sc, runner); shrunk != nil {
		kept := shrunk.Kept
		if keep != nil { // map back through the subset we started from
			orig := make([]int, len(kept))
			for i, k := range kept {
				orig[i] = keep[k]
			}
			kept = orig
		}
		t.Errorf("seed %d: shrunk to %d fault(s) in %d runs; minimal schedule:", seed, len(shrunk.Kept), shrunk.Runs)
		for _, f := range shrunk.Scenario.Faults {
			t.Errorf("  %v", f)
		}
		t.Errorf("repro: %s", ReproLine(seed, policy, kept, mutated, congestion))
	} else {
		t.Errorf("repro: %s", ReproLine(seed, policy, nil, mutated, congestion))
	}
	return rep
}

// TestDST replays a single seed when -dst.seed is given (the repro path)
// and otherwise smoke-runs a handful of fixed seeds.
func TestDST(t *testing.T) {
	if *seedFlag >= 0 {
		var keep []int
		if *keepFlag != "" {
			for _, part := range strings.Split(*keepFlag, ",") {
				k, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					t.Fatalf("bad -dst.keep %q: %v", *keepFlag, err)
				}
				keep = append(keep, k)
			}
			if keep == nil {
				keep = []int{}
			}
		}
		rep := runSeed(t, *seedFlag, keep, *policyFlag, *mutateFlag, *congFlag)
		t.Logf("seed %d: digest=%016x violations=%d stats=%+v",
			*seedFlag, rep.Digest, rep.Total, rep.Stats)
		return
	}
	for seed := int64(1); seed <= 8; seed++ {
		rep := runSeed(t, seed, nil, *policyFlag, false, false)
		if rep.Stats.Responses == 0 {
			t.Errorf("seed %d: workload produced no responses", seed)
		}
	}
}

// TestDSTSweep is the wide randomized gate: -dst.sweep seeds (default 60,
// a few hundred in the nightly job), every oracle on every tick.
func TestDSTSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping seed sweep in -short mode")
	}
	var requests, violations uint64
	for i := 0; i < *sweepFlag; i++ {
		seed := *baseFlag + int64(i)
		rep := runSeed(t, seed, nil, *policyFlag, false, false)
		requests += rep.Stats.Sent
		violations += uint64(rep.Total)
	}
	t.Logf("swept %d seeds (policy %q): %d requests, %d violations",
		*sweepFlag, *policyFlag, requests, violations)
}

// TestDSTPolicyMatrix runs a small seed slice under every arena policy, so
// the default test gate exercises each policy against every oracle; the
// nightly cross-policy matrix widens the per-policy seed count via
// -dst.policy and -dst.sweep.
func TestDSTPolicyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping policy matrix in -short mode")
	}
	for _, policy := range []string{"latency-aware", "knapsack", "p2c", "wlc"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rep := runSeed(t, seed, nil, policy, false, false)
				if rep.Stats.Responses == 0 {
					t.Errorf("seed %d policy %s: workload produced no responses", seed, policy)
				}
			}
		})
	}
}

// TestDSTDeterminism pins the replay contract: the same seed must yield
// byte-identical trace digests and identical counters, run to run.
func TestDSTDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 42, 1001} {
		sc := Generate(seed)
		sc.Policy = *policyFlag
		a, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Digest != b.Digest {
			t.Errorf("seed %d: digests differ across runs: %016x vs %016x", seed, a.Digest, b.Digest)
		}
		if a.Stats != b.Stats {
			t.Errorf("seed %d: stats differ across runs:\n%+v\n%+v", seed, a.Stats, b.Stats)
		}
	}
}

// TestDSTGeneratorBounds property-checks the generator itself over many
// seeds without running the simulator: documented ranges, fault windows
// inside the band, and the always-routable protected backend.
func TestDSTGeneratorBounds(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		sc := Generate(seed)
		if sc.Backends < 2 || sc.Backends > 16 {
			t.Fatalf("seed %d: %d backends outside [2,16]", seed, sc.Backends)
		}
		if len(sc.Faults) == 0 || len(sc.Faults) > 5 {
			t.Fatalf("seed %d: %d faults outside [1,5]", seed, len(sc.Faults))
		}
		connFaulted := make(map[int]bool)
		for _, f := range sc.Faults {
			if f.Start < warmupEnd || f.End > faultUntil || f.End <= f.Start {
				t.Fatalf("seed %d: fault window %v outside [%v,%v)", seed, f, warmupEnd, faultUntil)
			}
			if f.Server < 0 || f.Server >= sc.Backends {
				t.Fatalf("seed %d: fault %v targets unknown server", seed, f)
			}
			if f.Kind != FaultLatencyStep {
				connFaulted[f.Server] = true
			}
		}
		if len(connFaulted) >= sc.Backends {
			t.Fatalf("seed %d: every backend connection-faulted; pool can be emptied", seed)
		}
		if sc.Duration <= sc.CleanFrom || sc.CleanFrom <= sc.LastFaultEnd {
			t.Fatalf("seed %d: inconsistent timeline %v/%v/%v", seed, sc.LastFaultEnd, sc.CleanFrom, sc.Duration)
		}
		if sc.Workload.RequestTimeout < 20*sc.ServiceMedian[0] {
			t.Fatalf("seed %d: request timeout %v too tight", seed, sc.Workload.RequestTimeout)
		}
	}
}

// mutationSeed is a seed whose generated schedule consists of latency-step
// faults tall enough to arm BrokenWeights (found by findMutationSeed's
// scan; the generator is deterministic, so it stays valid until Generate
// changes, and findMutationSeed re-scans automatically if it does). The
// shrunk counterexample it yields is recorded in EXPERIMENTS.md.
const mutationSeed = 719

// TestDSTMutationSmoke proves the oracles have teeth: a deliberately
// broken weight update (BrokenWeights) must be caught, the clean run must
// not be, and the shrinker must reduce the schedule to the single latency
// fault the corruption depends on.
func TestDSTMutationSmoke(t *testing.T) {
	seed := findMutationSeed(t)
	sc := Generate(seed)
	trigger, ok := MutationTrigger(sc)
	if !ok {
		t.Fatalf("seed %d no longer suitable for mutation (generator changed?)", seed)
	}

	clean, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("clean run of seed %d violates oracles: %v", seed, clean.Violations)
	}

	runner := func(s Scenario) (*Report, error) { return RunMutated(s, Mutate(trigger)) }
	broken, err := runner(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !broken.Failed() {
		t.Fatalf("mutated run of seed %d not caught by any oracle", seed)
	}
	caught := false
	for _, v := range broken.Violations {
		if v.Oracle == "snapshot-weights" {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatalf("broken weights not caught by the snapshot-weights oracle: %v", broken.Violations)
	}

	shrunk := Shrink(sc, runner)
	if shrunk == nil {
		t.Fatal("shrinker could not reproduce the mutated failure")
	}
	if len(shrunk.Kept) != 1 {
		t.Fatalf("expected a 1-fault minimal schedule, got %d: %v", len(shrunk.Kept), shrunk.Scenario.Faults)
	}
	if k := shrunk.Scenario.Faults[0].Kind; k != FaultLatencyStep {
		t.Fatalf("minimal schedule kept a %v fault; corruption is latency-armed", k)
	}
	t.Logf("mutation caught and shrunk to %v in %d runs; repro: %s",
		shrunk.Scenario.Faults[0], shrunk.Runs, ReproLine(seed, "", shrunk.Kept, true, false))
}

// TestDSTKnapsackMutationSmoke is the knapsack solver's teeth check: the
// same seed runs clean under the real solver, but with BrokenKnapsack's
// de-normalizing projection armed by the latency excursion, the
// snapshot-weights oracle must fire.
func TestDSTKnapsackMutationSmoke(t *testing.T) {
	seed := findMutationSeed(t)
	sc := Generate(seed)
	sc.Policy = "knapsack"
	trigger, ok := MutationTrigger(sc)
	if !ok {
		t.Fatalf("seed %d no longer suitable for mutation (generator changed?)", seed)
	}

	clean, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failed() {
		t.Fatalf("clean knapsack run of seed %d violates oracles: %v", seed, clean.Violations)
	}

	broken, err := RunMutated(sc, MutateKnapsack(trigger))
	if err != nil {
		t.Fatal(err)
	}
	if !broken.Failed() {
		t.Fatalf("mutated knapsack run of seed %d not caught by any oracle", seed)
	}
	caught := false
	for _, v := range broken.Violations {
		if v.Oracle == "snapshot-weights" {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatalf("broken knapsack weights not caught by the snapshot-weights oracle: %v", broken.Violations)
	}
}

// findMutationSeed scans for a seed whose schedule is all latency steps
// with at least one tall enough to arm the mutation — deterministic, so
// the scan cost is paid once and the result cached for the process.
func findMutationSeed(t *testing.T) int64 {
	t.Helper()
	suitable := func(seed int64) bool {
		sc := Generate(seed)
		if len(sc.Faults) < 2 || sc.Workload.Pipeline != 1 {
			return false
		}
		for _, f := range sc.Faults {
			if f.Kind != FaultLatencyStep {
				return false
			}
		}
		_, ok := MutationTrigger(sc)
		return ok
	}
	if suitable(mutationSeed) {
		return mutationSeed
	}
	for seed := int64(1); seed < 4000; seed++ {
		if suitable(seed) {
			t.Logf("mutationSeed %d stale; scanned to %d (update the constant)", mutationSeed, seed)
			return seed
		}
	}
	t.Fatal("no mutation-suitable seed in scan range")
	return -1
}

// TestDSTShrunkRegression pins the counterexample the mutation smoke test
// shrinks to (see EXPERIMENTS.md "DST"): the minimal one-fault schedule
// must keep tripping the snapshot-weights oracle forever.
func TestDSTShrunkRegression(t *testing.T) {
	seed := findMutationSeed(t)
	sc := Generate(seed)
	trigger, ok := MutationTrigger(sc)
	if !ok {
		t.Fatalf("seed %d no longer suitable (generator changed?)", seed)
	}
	// Reduce to the single tallest latency fault — the shape the shrinker
	// converges to — and require the oracle to fire on it alone.
	best, bestIdx := time.Duration(0), -1
	for i, f := range sc.Faults {
		if f.Kind == FaultLatencyStep && f.Extra > best {
			best, bestIdx = f.Extra, i
		}
	}
	sc.Faults = []FaultSpec{sc.Faults[bestIdx]}
	sc.finalize()
	rep, err := RunMutated(sc, Mutate(trigger))
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, v := range rep.Violations {
		if v.Oracle == "snapshot-weights" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("regression: minimal schedule no longer caught (violations: %v)", rep.Violations)
	}
}

// TestDSTCongestionSweep sweeps GenerateCongestion seeds — the six
// congestion fault kinds under every oracle, including the distress
// conservation and ejection-attribution rules. Beyond zero violations it
// requires the sweep to have actually exercised the channel: some run must
// emit distress, and the LB must have observed some of it.
func TestDSTCongestionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping congestion sweep in -short mode")
	}
	var requests, violations, emitted, observed, congEj uint64
	for i := 0; i < *congSweep; i++ {
		seed := *baseFlag + int64(i)
		rep := runSeed(t, seed, nil, *policyFlag, false, true)
		requests += rep.Stats.Sent
		violations += uint64(rep.Total)
		emitted += rep.Stats.Retransmits + rep.Stats.DupAcks + rep.Stats.ZeroWindows
		observed += rep.Stats.CongObserved
		congEj += rep.Stats.CongEjections
	}
	if emitted == 0 {
		t.Errorf("no run in %d seeds emitted any transport distress; fault kinds are inert", *congSweep)
	}
	if observed == 0 {
		t.Errorf("client emitted %d distress signals but the LB tracker observed none", emitted)
	}
	t.Logf("swept %d congestion seeds (policy %q): %d requests, %d violations, "+
		"%d distress signals emitted, %d observed, %d congestion ejections",
		*congSweep, *policyFlag, requests, violations, emitted, observed, congEj)
}

// TestDSTCongestionDeterminism pins the replay contract for the congestion
// generator: same seed, byte-identical digest and counters.
func TestDSTCongestionDeterminism(t *testing.T) {
	for _, seed := range []int64{7, 42, 1001} {
		sc := GenerateCongestion(seed)
		sc.Policy = *policyFlag
		a, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Digest != b.Digest {
			t.Errorf("seed %d: digests differ across runs: %016x vs %016x", seed, a.Digest, b.Digest)
		}
		if a.Stats != b.Stats {
			t.Errorf("seed %d: stats differ across runs:\n%+v\n%+v", seed, a.Stats, b.Stats)
		}
	}
}

// TestDSTCongestionGeneratorBounds property-checks GenerateCongestion:
// documented parameter ranges, windows inside the fault band, only the six
// congestion kinds, the at-most-one constraints, and a protected backend
// that no collapse or autoscale ever starves.
func TestDSTCongestionGeneratorBounds(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		sc := GenerateCongestion(seed)
		if !sc.Congestion {
			t.Fatalf("seed %d: Congestion flag unset", seed)
		}
		if rto := sc.Workload.RetransmitTimeout; rto < 15*time.Millisecond || rto > 30*time.Millisecond {
			t.Fatalf("seed %d: RetransmitTimeout %v outside [15ms,30ms]", seed, rto)
		}
		if age := sc.Workload.DupAckAge; age < 5*time.Millisecond || age > 10*time.Millisecond {
			t.Fatalf("seed %d: DupAckAge %v outside [5ms,10ms]", seed, age)
		}
		if zb := sc.Workload.ZeroWindowBurst; zb < 6 || zb > 10 {
			t.Fatalf("seed %d: ZeroWindowBurst %d outside [6,10]", seed, zb)
		}
		if sc.Workload.RetransmitTimeout >= sc.Workload.RequestTimeout {
			t.Fatalf("seed %d: RTO %v not below RequestTimeout %v",
				seed, sc.Workload.RetransmitTimeout, sc.Workload.RequestTimeout)
		}
		if len(sc.Faults) == 0 || len(sc.Faults) > 4 {
			t.Fatalf("seed %d: %d faults outside [1,4]", seed, len(sc.Faults))
		}
		hot, auto := 0, 0
		starved := make(map[int]bool)
		for _, f := range sc.Faults {
			if f.Start < warmupEnd || f.End > faultUntil || f.End <= f.Start {
				t.Fatalf("seed %d: fault window %v outside [%v,%v)", seed, f, warmupEnd, faultUntil)
			}
			if f.Server < 0 || f.Server >= sc.Backends {
				t.Fatalf("seed %d: fault %v targets unknown server", seed, f)
			}
			switch f.Kind {
			case FaultBandwidthCollapse:
				if f.Rate < 20e3 || f.Rate > 80e3 {
					t.Fatalf("seed %d: collapse rate %.0f outside [20k,80k]", seed, f.Rate)
				}
				starved[f.Server] = true
			case FaultIncast:
				if f.Extra < 2*time.Millisecond || f.Extra > 8*time.Millisecond {
					t.Fatalf("seed %d: incast hold %v outside [2ms,8ms]", seed, f.Extra)
				}
			case FaultQueueRamp:
				if f.Extra < 1500*time.Microsecond || f.Extra > 6*time.Millisecond {
					t.Fatalf("seed %d: ramp extra %v outside [1.5ms,6ms]", seed, f.Extra)
				}
				if f.Rise <= 0 || f.Rise > (f.End-f.Start)/2 {
					t.Fatalf("seed %d: ramp rise %v outside (0, window/2]", seed, f.Rise)
				}
			case FaultHotKey:
				hot++
				if f.Fraction < 0.1 || f.Fraction > 0.3 || f.Factor < 4 || f.Factor > 8 {
					t.Fatalf("seed %d: hot-key params %v out of range", seed, f)
				}
			case FaultHerd:
			case FaultAutoscale:
				auto++
				starved[f.Server] = true
			default:
				t.Fatalf("seed %d: non-congestion kind %v in congestion schedule", seed, f.Kind)
			}
		}
		if hot > 1 || auto > 1 {
			t.Fatalf("seed %d: %d hot-key and %d autoscale faults (max 1 each)", seed, hot, auto)
		}
		if len(starved) >= sc.Backends {
			t.Fatalf("seed %d: every backend collapse/autoscale-targeted; pool can be starved", seed)
		}
	}
}

package dst

import (
	"bytes"
	"errors"
	"testing"

	"inbandlb/internal/auditlog"
)

func TestIncidentCodecRoundTrip(t *testing.T) {
	cases := []Incident{
		{Seed: 42},
		{Seed: -7, Congestion: true, Policy: "latency-aware", Digest: 0xdeadbeef},
		{Seed: 1, Keep: []int{}},
		{Seed: 9, Keep: []int{2, 0, 5}, Policy: "p2c", Digest: 1},
	}
	for _, inc := range cases {
		var buf bytes.Buffer
		if err := WriteIncident(&buf, inc); err != nil {
			t.Fatalf("%+v: write: %v", inc, err)
		}
		got, err := ReadIncident(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%+v: read: %v", inc, err)
		}
		if got.Seed != inc.Seed || got.Congestion != inc.Congestion ||
			got.Policy != inc.Policy || got.Digest != inc.Digest ||
			(got.Keep == nil) != (inc.Keep == nil) || len(got.Keep) != len(inc.Keep) {
			t.Fatalf("round trip %+v -> %+v", inc, got)
		}
		for i := range inc.Keep {
			if got.Keep[i] != inc.Keep[i] {
				t.Fatalf("keep round trip %v -> %v", inc.Keep, got.Keep)
			}
		}
	}
}

func TestIncidentCodecRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteIncident(&buf, Incident{Seed: 3, Policy: "latency-aware", Digest: 77}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, err := ReadIncident(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at %d went undetected", i)
		}
	}
	for k := 0; k < len(full); k++ {
		if _, err := ReadIncident(bytes.NewReader(full[:k])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", k)
		}
	}
	if _, err := ReadIncident(bytes.NewReader(nil)); !errors.Is(err, ErrNotIncident) {
		t.Fatalf("empty file: %v", err)
	}
}

// TestIncidentReplayReproducesDecisions is the tentpole's acceptance
// property: capture a faulty scenario's decision log, replay it, and
// require 100% decision reproduction with byte-identical logs.
func TestIncidentReplayReproducesDecisions(t *testing.T) {
	for _, tc := range []struct {
		name string
		inc  Incident
	}{
		{"baseline", Incident{Seed: 7}},
		{"congestion", Incident{Seed: 11, Congestion: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var decisions, trace bytes.Buffer
			rep, err := CaptureIncident(tc.inc, &decisions, &trace)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			if rep.Failed() {
				t.Fatalf("capture run violated oracles: %v", rep.Violations)
			}
			logged, err := auditlog.Verify(bytes.NewReader(decisions.Bytes()))
			if err != nil {
				t.Fatalf("recorded log failed verification: %v", err)
			}
			if len(logged.Records) == 0 {
				t.Fatal("scenario produced no decisions — not a useful incident")
			}

			rr, err := ReplayIncident(bytes.NewReader(trace.Bytes()), bytes.NewReader(decisions.Bytes()))
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !rr.OK() {
				t.Fatalf("replay did not reproduce the incident: matched %d/%d, byteIdentical=%v digestMatch=%v mismatch=%q",
					rr.Matched, rr.Logged, rr.ByteIdentical, rr.DigestMatch, rr.FirstMismatch)
			}
			if rr.Logged != len(logged.Records) {
				t.Fatalf("replay saw %d logged records, reader saw %d", rr.Logged, len(logged.Records))
			}
			t.Logf("%s: %d decisions reproduced exactly (digest %016x)", tc.name, rr.Matched, rep.Digest)
		})
	}
}

// TestIncidentReplayRejectsMutatedLog: any tampering with the recorded
// decision log must be refused before replay even starts.
func TestIncidentReplayRejectsMutatedLog(t *testing.T) {
	var decisions, trace bytes.Buffer
	if _, err := CaptureIncident(Incident{Seed: 7}, &decisions, &trace); err != nil {
		t.Fatal(err)
	}
	raw := decisions.Bytes()
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0x01
	if _, err := ReplayIncident(bytes.NewReader(trace.Bytes()), bytes.NewReader(mut)); err == nil {
		t.Fatal("mutated decision log was accepted")
	}
	// A boundary-truncated (unsealed) log is refused too.
	if _, err := ReplayIncident(bytes.NewReader(trace.Bytes()),
		bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated decision log was accepted")
	}
}

// TestIncidentReplayDetectsDivergence: replaying against the wrong
// scenario (different seed) must not silently report success.
func TestIncidentReplayDetectsDivergence(t *testing.T) {
	var decisions, trace, wrongTrace bytes.Buffer
	if _, err := CaptureIncident(Incident{Seed: 7}, &decisions, &trace); err != nil {
		t.Fatal(err)
	}
	var otherDecisions bytes.Buffer
	if _, err := CaptureIncident(Incident{Seed: 8}, &otherDecisions, &wrongTrace); err != nil {
		t.Fatal(err)
	}
	// Seed-8 trace with seed-7 decisions: verification of the log passes
	// (it is untampered), but reproduction must fail.
	rr, err := ReplayIncident(bytes.NewReader(wrongTrace.Bytes()), bytes.NewReader(decisions.Bytes()))
	if err != nil {
		t.Fatalf("replay errored instead of reporting divergence: %v", err)
	}
	if rr.OK() {
		t.Fatal("mismatched trace/log pair reported full reproduction")
	}
	if rr.ByteIdentical {
		t.Fatal("divergent runs claimed byte-identical logs")
	}
}

package dst

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"inbandlb/internal/auditlog"
)

// Incident replay closes the loop the ROADMAP's control-plane-hardening
// item asks for: a production-grade "explain this outage" workflow built
// on DST's determinism guarantee. A scenario is a pure function of its
// seed, so an incident trace does not need to capture packets — it
// captures the scenario coordinates (seed, flavor, policy, fault subset)
// plus the recorded run's trace digest, and the decision log captures
// what the controller did. Replay regenerates the scenario, runs it with
// a fresh controller, and proves the replayed controller makes the same
// decisions, record for record, byte for byte.

// Incident identifies one recorded run.
type Incident struct {
	// Seed and Congestion select the generator: Generate(Seed) or
	// GenerateCongestion(Seed).
	Seed       int64
	Congestion bool
	// Policy overrides the scenario's routing policy ("" keeps the
	// generated default).
	Policy string
	// Keep, when non-nil, restricts the fault schedule to these indices
	// (the ddmin shrink convention) before finalize.
	Keep []int
	// Digest is the recorded run's trace digest — the whole-run fingerprint
	// replay must reproduce.
	Digest uint64
}

// IncidentMagic opens every incident trace file.
const IncidentMagic = "INBINCT1"

// ErrNotIncident marks a file that is not an incident trace.
var ErrNotIncident = errors.New("dst: not an incident trace (bad magic)")

// ErrIncidentCorrupt marks a trace whose checksum does not cover its
// payload.
var ErrIncidentCorrupt = errors.New("dst: incident trace corrupt (checksum mismatch)")

// WriteIncident encodes inc: magic, little-endian payload, FNV-1a64
// checksum over the payload.
func WriteIncident(w io.Writer, inc Incident) error {
	var b bytes.Buffer
	var u64 [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		b.Write(u64[:])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u64[:4], v)
		b.Write(u64[:4])
	}
	put64(uint64(inc.Seed))
	if inc.Congestion {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	if len(inc.Policy) > 0xffff {
		return fmt.Errorf("dst: policy name %d bytes too long", len(inc.Policy))
	}
	binary.LittleEndian.PutUint16(u64[:2], uint16(len(inc.Policy)))
	b.Write(u64[:2])
	b.WriteString(inc.Policy)
	if inc.Keep == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		put32(uint32(len(inc.Keep)))
		for _, k := range inc.Keep {
			put32(uint32(k))
		}
	}
	put64(inc.Digest)

	h := fnv.New64a()
	h.Write(b.Bytes())
	if _, err := io.WriteString(w, IncidentMagic); err != nil {
		return err
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(u64[:], h.Sum64())
	_, err := w.Write(u64[:])
	return err
}

// ReadIncident decodes and checksums an incident trace.
func ReadIncident(r io.Reader) (Incident, error) {
	var inc Incident
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return inc, fmt.Errorf("%w: file shorter than the header", ErrNotIncident)
	}
	if string(magic[:]) != IncidentMagic {
		return inc, ErrNotIncident
	}
	rest, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return inc, fmt.Errorf("dst: reading incident trace: %w", err)
	}
	if len(rest) < 8 {
		return inc, ErrIncidentCorrupt
	}
	payload, sum := rest[:len(rest)-8], binary.LittleEndian.Uint64(rest[len(rest)-8:])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return inc, ErrIncidentCorrupt
	}
	rd := bytes.NewReader(payload)
	var u64 [8]byte
	get := func(n int) ([]byte, error) {
		if _, err := io.ReadFull(rd, u64[:n]); err != nil {
			return nil, ErrIncidentCorrupt
		}
		return u64[:n], nil
	}
	b, err := get(8)
	if err != nil {
		return inc, err
	}
	inc.Seed = int64(binary.LittleEndian.Uint64(b))
	if b, err = get(1); err != nil {
		return inc, err
	}
	inc.Congestion = b[0] != 0
	if b, err = get(2); err != nil {
		return inc, err
	}
	plen := int(binary.LittleEndian.Uint16(b))
	pol := make([]byte, plen)
	if _, err := io.ReadFull(rd, pol); err != nil {
		return inc, ErrIncidentCorrupt
	}
	inc.Policy = string(pol)
	if b, err = get(1); err != nil {
		return inc, err
	}
	if b[0] != 0 {
		if b, err = get(4); err != nil {
			return inc, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		if n > 1<<16 {
			return inc, ErrIncidentCorrupt
		}
		inc.Keep = make([]int, n)
		for i := range inc.Keep {
			if b, err = get(4); err != nil {
				return inc, err
			}
			inc.Keep[i] = int(binary.LittleEndian.Uint32(b))
		}
	}
	if b, err = get(8); err != nil {
		return inc, err
	}
	inc.Digest = binary.LittleEndian.Uint64(b)
	if rd.Len() != 0 {
		return inc, ErrIncidentCorrupt
	}
	return inc, nil
}

// Scenario regenerates the incident's scenario from its coordinates.
func (inc Incident) Scenario() (Scenario, error) {
	gen := Generate
	if inc.Congestion {
		gen = GenerateCongestion
	}
	sc := gen(inc.Seed)
	sc.Policy = inc.Policy
	if inc.Keep != nil {
		sub := make([]FaultSpec, len(inc.Keep))
		for i, k := range inc.Keep {
			if k < 0 || k >= len(sc.Faults) {
				return sc, fmt.Errorf("dst: keep index %d outside schedule of %d faults", k, len(sc.Faults))
			}
			sub[i] = sc.Faults[k]
		}
		sc.Faults = sub
		sc.finalize()
	}
	return sc, nil
}

// CaptureIncident runs the incident's scenario with a synchronous audit
// sink writing the decision log to decisions, then writes the incident
// trace (digest included) to trace. The recorded log is sealed. Returns
// the run's report.
func CaptureIncident(inc Incident, decisions, trace io.Writer) (*Report, error) {
	sc, err := inc.Scenario()
	if err != nil {
		return nil, err
	}
	sink, err := auditlog.NewSyncWriter(decisions)
	if err != nil {
		return nil, err
	}
	rep, err := RunAudited(sc, sink)
	if err != nil {
		return nil, err
	}
	if err := sink.Seal(); err != nil {
		return nil, err
	}
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("dst: recording decision log: %w", err)
	}
	inc.Digest = rep.Digest
	if err := WriteIncident(trace, inc); err != nil {
		return nil, fmt.Errorf("dst: writing incident trace: %w", err)
	}
	return rep, nil
}

// ReplayReport is the outcome of replaying a recorded incident.
type ReplayReport struct {
	Incident Incident
	// Logged and Replayed count decision records in the recorded log and
	// the replay run; Matched counts positions where (kind, backend,
	// generation) agree.
	Logged, Replayed, Matched int
	// ByteIdentical is the strongest claim: re-encoding the replayed
	// decisions produces the recorded log's exact chain value — the two
	// logs are byte-for-byte the same file.
	ByteIdentical bool
	// DigestMatch: the replay's whole-run trace digest equals the one the
	// incident trace recorded.
	DigestMatch bool
	// FirstMismatch describes the earliest diverging record ("" when the
	// sequences agree).
	FirstMismatch string
	// Report is the replay run's full DST report (oracle verdicts, stats).
	Report *Report
}

// OK reports full reproduction: every logged decision matched and the
// encoded logs are byte-identical.
func (r *ReplayReport) OK() bool {
	return r.Logged == r.Replayed && r.Matched == r.Logged &&
		r.ByteIdentical && r.DigestMatch && r.FirstMismatch == ""
}

// ReplayIncident verifies the recorded decision log (hash chain + seal),
// regenerates the incident's scenario, re-runs it with a collecting audit
// sink, and compares the replayed decision sequence against the log.
func ReplayIncident(trace, decisions io.Reader) (*ReplayReport, error) {
	inc, err := ReadIncident(trace)
	if err != nil {
		return nil, err
	}
	logged, err := auditlog.Verify(decisions)
	if err != nil {
		return nil, fmt.Errorf("decision log rejected: %w", err)
	}
	sc, err := inc.Scenario()
	if err != nil {
		return nil, err
	}
	col := &auditlog.Collector{}
	rep, err := RunAudited(sc, col)
	if err != nil {
		return nil, err
	}
	replayed := col.Snapshot()

	rr := &ReplayReport{
		Incident: inc,
		Logged:   len(logged.Records),
		Replayed: len(replayed),
		Report:   rep,
	}
	rr.DigestMatch = rep.Digest == inc.Digest
	n := rr.Logged
	if rr.Replayed < n {
		n = rr.Replayed
	}
	for i := 0; i < n; i++ {
		l, p := &logged.Records[i], &replayed[i]
		if l.Kind != p.Kind || l.Backend != p.Backend || l.Gen != p.Gen {
			if rr.FirstMismatch == "" {
				rr.FirstMismatch = fmt.Sprintf(
					"record %d: logged %s backend=%d gen=%d, replayed %s backend=%d gen=%d",
					i, l.Kind, l.Backend, l.Gen, p.Kind, p.Backend, p.Gen)
			}
			continue
		}
		rr.Matched++
	}
	if rr.FirstMismatch == "" && rr.Logged != rr.Replayed {
		rr.FirstMismatch = fmt.Sprintf("record count: logged %d, replayed %d", rr.Logged, rr.Replayed)
	}

	// Byte-identity: re-encode the replayed decisions through the same
	// chained writer and compare final chain values. Equal chains mean the
	// recorded file and the re-encoded replay are the same bytes.
	w, err := auditlog.NewWriter(io.Discard)
	if err != nil {
		return nil, err
	}
	for i := range replayed {
		rec := replayed[i]
		if err := w.Append(&rec); err != nil {
			return nil, err
		}
	}
	if err := w.Seal(); err != nil {
		return nil, err
	}
	rr.ByteIdentical = w.Chain() == logged.Chain
	return rr, nil
}

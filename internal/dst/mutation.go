package dst

import (
	"math"
	"time"

	"inbandlb/internal/control"
)

// BrokenWeights is the deliberately broken controller for the
// mutation-smoke test: it behaves exactly like the real LatencyAware
// policy until it observes a single latency sample at or above Trigger,
// after which every Weights() read — including the one the Controller
// copies into each published Snapshot — reports a de-normalized vector.
// The bug therefore only manifests when the fault schedule actually
// produces a latency excursion, which is what makes it a meaningful
// target for the shrinker: the minimal reproducing schedule must retain a
// latency-step fault tall enough to arm it.
type BrokenWeights struct {
	*control.LatencyAware
	// Trigger arms the corruption; pick it above the scenario's honest
	// latency ceiling (see MutationTrigger) so only injected faults fire it.
	Trigger time.Duration
	armed   bool
}

// ObserveLatency arms the corruption on the first over-Trigger sample and
// otherwise defers to the real policy.
func (b *BrokenWeights) ObserveLatency(i int, now, sample time.Duration) {
	if sample >= b.Trigger {
		b.armed = true
	}
	b.LatencyAware.ObserveLatency(i, now, sample)
}

// Weights returns the real vector until armed, then a corrupted one — the
// broken weight update the snapshot-weights oracle must catch.
func (b *BrokenWeights) Weights() []float64 {
	w := b.LatencyAware.Weights()
	if b.armed && len(w) > 0 {
		w[0] += 0.5
	}
	return w
}

// Mutate is the RunMutated hook installing BrokenWeights. It applies only
// to the latency-aware policy; other policies pass through unchanged (each
// new policy has its own characteristic mutant and hook).
func Mutate(trigger time.Duration) func(control.Policy) control.Policy {
	return func(p control.Policy) control.Policy {
		la, ok := p.(*control.LatencyAware)
		if !ok {
			return p
		}
		return &BrokenWeights{LatencyAware: la, Trigger: trigger}
	}
}

// BrokenKnapsack is the knapsack solver's characteristic mutant: a solver
// whose greedy fill is correct but whose published allocation silently
// de-normalizes once a latency excursion arms it — the shape of a
// projection bug (clamping without renormalizing). The snapshot-weights
// oracle must catch it exactly as it catches BrokenWeights.
type BrokenKnapsack struct {
	*control.KnapsackGreedy
	Trigger time.Duration
	armed   bool
}

// ObserveLatency arms the corruption on the first over-Trigger sample.
func (b *BrokenKnapsack) ObserveLatency(i int, now, sample time.Duration) {
	if sample >= b.Trigger {
		b.armed = true
	}
	b.KnapsackGreedy.ObserveLatency(i, now, sample)
}

// Weights returns the real vector until armed, then a de-normalized one.
func (b *BrokenKnapsack) Weights() []float64 {
	w := b.KnapsackGreedy.Weights()
	if b.armed && len(w) > 0 {
		w[0] += 0.5
	}
	return w
}

// MutateKnapsack is the RunMutated hook installing BrokenKnapsack; other
// policies pass through unchanged.
func MutateKnapsack(trigger time.Duration) func(control.Policy) control.Policy {
	return func(p control.Policy) control.Policy {
		kg, ok := p.(*control.KnapsackGreedy)
		if !ok {
			return p
		}
		return &BrokenKnapsack{KnapsackGreedy: kg, Trigger: trigger}
	}
}

// MutationTrigger computes a trigger threshold for sc that honest traffic
// cannot plausibly reach but the scenario's tallest latency-step fault
// clears with margin. ok is false when the schedule has no such fault (or
// honest tails could reach it), in which case sc is unsuitable for the
// mutation-smoke test.
func MutationTrigger(sc Scenario) (trigger time.Duration, ok bool) {
	var maxBase, maxTail time.Duration
	for i := 0; i < sc.Backends; i++ {
		// Per-server log-normal 5σ tail: beyond any service sample a
		// few-second run plausibly draws (Φ(-5) ≈ 3e-7 per sample).
		tail := time.Duration(float64(sc.ServiceMedian[i]) * math.Exp(5*sc.ServiceSigma[i]))
		if tail > maxTail {
			maxTail = tail
		}
		if sc.BaseDelay[i] > maxBase {
			maxBase = sc.BaseDelay[i]
		}
	}
	rtt := sc.ClientToLB + sc.LBToServer + sc.ServerToClient
	// Honest ceiling: one RTT, the worst static path delay, a full think
	// gap, the service tail, and a 1 ms allowance for transient queueing.
	ceiling := rtt + maxBase + sc.Workload.ThinkTime + sc.Workload.ThinkJitter +
		maxTail + time.Millisecond
	// Guaranteed excursion: during the tallest latency fault every
	// triggered-gap sample from that server carries the full RTT, the
	// injected Extra, and at least the configured think time.
	var excursion time.Duration
	for _, f := range sc.Faults {
		if f.Kind != FaultLatencyStep {
			continue
		}
		if e := f.Extra + rtt + sc.Workload.ThinkTime; e > excursion {
			excursion = e
		}
	}
	if excursion < ceiling+200*time.Microsecond {
		return 0, false
	}
	return (ceiling + excursion) / 2, true
}

package dst

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"inbandlb/internal/auditlog"
	"inbandlb/internal/control"
	"inbandlb/internal/faults"
	"inbandlb/internal/server"
	"inbandlb/internal/tcpsim"
	"inbandlb/internal/testbed"
)

// Violation is one oracle failure, timestamped on the sim clock.
type Violation struct {
	At     time.Duration
	Oracle string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v %s: %s", v.At, v.Oracle, v.Detail)
}

// RunStats are the end-of-run counters a Report carries for sweeps and
// the experiment harness.
type RunStats struct {
	Sent      uint64
	Responses uint64
	Timeouts  uint64
	Aborts    uint64
	Stale     uint64
	Abandoned uint64
	NewFlows  uint64
	Fallbacks uint64
	NoBackend uint64
	Ejections uint64
	// Congestion channel (GenerateCongestion runs; zero elsewhere).
	Retransmits   uint64 // client RTO re-sends
	DupAcks       uint64 // client duplicate ACKs emitted
	ZeroWindows   uint64 // client zero-window advertisements
	CongObserved  uint64 // distress events the LB's tracker detected
	CongEjections uint64 // ejections claimed by the congestion detector
}

// Report is the outcome of one scenario run. Digest is a 64-bit FNV-1a
// fold of every per-tick counter tuple plus the final state: two runs of
// the same Scenario must produce equal digests, which is what makes a
// repro line from CI trustworthy on a developer laptop.
type Report struct {
	Scenario Scenario
	// Violations holds the first recorded failures (capped); Total counts
	// all of them, so a pathologically broken run stays bounded.
	Violations []Violation
	Total      int
	Digest     uint64
	Stats      RunStats
}

// Failed reports whether any oracle fired.
func (r *Report) Failed() bool { return r.Total > 0 }

// maxRecordedViolations bounds Report.Violations; Total keeps counting.
const maxRecordedViolations = 64

// livenessEvidence is how many post-recovery flow arrivals a backend must
// have seen before a non-Healthy end state counts as a liveness failure.
// Below it, the backend simply never received trial traffic inside the
// run — a statement about the bounded workload, not about the controller
// (the first sample needs two packets, and backoff can eat the rest).
const livenessEvidence = 4

// RunOptions carries the optional hooks a scenario run accepts.
type RunOptions struct {
	// Mutate wraps the built policy (deliberately broken variants for the
	// oracle-teeth tests). Nil runs the real policy.
	Mutate func(control.Policy) control.Policy
	// Audit, when non-nil, receives every controller decision. Incident
	// recording passes an auditlog.SyncWriter so the decision log is a
	// deterministic function of the scenario; replay passes a Collector.
	Audit auditlog.Sink
}

// Run executes the scenario with the real controller and returns its
// report. It is RunMutated with the identity policy.
func Run(sc Scenario) (*Report, error) { return RunOpts(sc, RunOptions{}) }

// RunMutated executes the scenario, optionally substituting a wrapped
// (deliberately broken) policy built around the real one — the hook the
// mutation-smoke tests use to prove the oracles have teeth. The scenario's
// Policy field selects any registered routing policy; oracles that assert
// on published snapshots or weight vectors apply themselves only to
// policies that produce them.
func RunMutated(sc Scenario, mutate func(control.Policy) control.Policy) (*Report, error) {
	return RunOpts(sc, RunOptions{Mutate: mutate})
}

// RunAudited executes the scenario with every controller decision mirrored
// into sink — the incident recorder's entry point.
func RunAudited(sc Scenario, sink auditlog.Sink) (*Report, error) {
	return RunOpts(sc, RunOptions{Audit: sink})
}

// RunOpts is the general form behind Run/RunMutated/RunAudited.
func RunOpts(sc Scenario, opts RunOptions) (*Report, error) {
	mutate := opts.Mutate
	if sc.Backends < 2 {
		return nil, fmt.Errorf("dst: scenario not generated (backends=%d)", sc.Backends)
	}
	names := make([]string, sc.Backends)
	for i := range names {
		names[i] = fmt.Sprintf("server-%d", i)
	}
	pol, err := control.BuildPolicy(sc.PolicyName(), control.PolicySpec{
		Backends:  names,
		TableSize: sc.TableSize,
		Alpha:     sc.Alpha,
		MinWeight: sc.MinWeight,
		Interval:  sc.ControlInterval,
		Seed:      sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	if mutate != nil {
		pol = mutate(pol)
	}
	ctrl := control.NewController(pol, control.ControllerConfig{
		Interval: sc.ControlInterval,
		Detector: detectorConfig(sc),
		Audit:    opts.Audit,
	})

	servers := make([]server.Config, sc.Backends)
	scheds := make([]faults.Schedule, sc.Backends)
	collapses := make(map[int]faults.Collapses)
	for i := range servers {
		servers[i] = server.Config{
			Name:       names[i],
			Workers:    sc.Workers[i],
			QueueLimit: sc.QueueLimit[i],
			Service:    server.LogNormal{Median: sc.ServiceMedian[i], Sigma: sc.ServiceSigma[i]},
		}
		scheds[i] = faults.Step{Extra: sc.BaseDelay[i]}
	}
	for _, f := range sc.Faults {
		switch f.Kind {
		case FaultLatencyStep:
			scheds[f.Server] = faults.Stack{scheds[f.Server],
				faults.Step{Start: f.Start, End: f.End, Extra: f.Extra}}
		case FaultOutageRefuse, FaultOutageBlackhole:
			servers[f.Server].ConnFaults = stackConn(servers[f.Server].ConnFaults,
				faults.Outage{Start: f.Start, End: f.End, Blackhole: f.Kind == FaultOutageBlackhole})
		case FaultFlaky:
			servers[f.Server].ConnFaults = stackConn(servers[f.Server].ConnFaults,
				faults.Flaky{Start: f.Start, End: f.End, P: f.P, Seed: f.Seed})
		case FaultReset:
			servers[f.Server].ConnFaults = stackConn(servers[f.Server].ConnFaults,
				faults.Reset{Start: f.Start, End: f.End, AfterBytes: f.AfterBytes})
		case FaultBandwidthCollapse:
			collapses[f.Server] = append(collapses[f.Server],
				faults.Collapse{Start: f.Start, End: f.End, Rate: f.Rate})
		case FaultIncast:
			servers[f.Server].Batch = stackSched(servers[f.Server].Batch,
				faults.Step{Start: f.Start, End: f.End, Extra: f.Extra})
		case FaultQueueRamp:
			scheds[f.Server] = faults.Stack{scheds[f.Server],
				faults.Ramp{Start: f.Start, End: f.End, Rise: f.Rise, Extra: f.Extra}}
		case FaultHotKey:
			// The workload carries the skew window; the last hot-key fault
			// wins (the generator emits at most one).
			sc.Workload.Hot = &tcpsim.HotWindow{
				Start: f.Start, End: f.End, Fraction: f.Fraction, Factor: f.Factor,
			}
		}
	}

	cluster, err := testbed.NewCluster(testbed.ClusterConfig{
		Seed:                sc.Seed,
		Policy:              ctrl,
		Servers:             servers,
		Workload:            sc.Workload,
		ClientToLB:          sc.ClientToLB,
		LBToServer:          sc.LBToServer,
		ServerToClient:      sc.ServerToClient,
		LinkRate:            sc.LinkRate,
		ServerPathSchedules: scheds,
		ControlInterval:     sc.ControlInterval,
		Congestion:          sc.Congestion,
	})
	if err != nil {
		return nil, err
	}

	// Faults that act on assembled cluster parts rather than configs:
	// bandwidth collapses override LB→server line rates (with a bounded
	// queue so sustained overload tail-drops instead of buffering forever),
	// herds abort every client connection at once, and autoscale churn
	// removes/returns a backend through the manual-ejection veto.
	for s, col := range collapses {
		link := cluster.ServerLinks[s]
		link.SetRateAt(col.RateAt)
		if link.QueueLimit == 0 {
			link.QueueLimit = 128
		}
	}
	for _, f := range sc.Faults {
		switch f.Kind {
		case FaultHerd:
			cluster.Sim.Schedule(f.Start, cluster.Client.Thunder)
		case FaultAutoscale:
			s := f.Server
			cluster.Sim.Schedule(f.Start, func() { ctrl.SetEjected(s, true) })
			cluster.Sim.Schedule(f.End, func() { ctrl.SetEjected(s, false) })
		}
	}

	_, hasTable := pol.(control.TableSource)
	_, weighted := pol.(control.Weighted)
	h := &harness{
		sc:         sc,
		ctrl:       ctrl,
		cluster:    cluster,
		hasTable:   hasTable,
		weighted:   weighted,
		report:     &Report{Scenario: sc},
		digest:     fnv.New64a(),
		samples:    make([][]time.Duration, sc.Backends),
		lastState:  make([]control.HealthState, sc.Backends),
		lastChange: make([]time.Duration, sc.Backends),
	}

	// In-band samples feed the estimator-bounds oracle, but only samples
	// taken on clean stretches and only under Pipeline==1 (with pipelined
	// sends the triggered-gap signal intentionally mixes in-batch gaps; the
	// paper's ensemble handles that adaptively, but a fixed two-sided
	// factor bound would not be meaningful there).
	if sc.Workload.Pipeline == 1 {
		cluster.LB.OnSample = func(now time.Duration, backend int, sample time.Duration) {
			if !sc.cleanAt(now) || len(h.samples[backend]) >= 4096 {
				return
			}
			h.samples[backend] = append(h.samples[backend], sample)
		}
	}

	cluster.Sim.Every(sc.CheckInterval, sc.CheckInterval, func() bool {
		h.checkTick()
		return cluster.Sim.Now() < sc.Duration
	})

	cluster.Run(sc.Duration)
	// Drain: stop issuing work and let every in-flight packet and pending
	// request timeout resolve, so the cross-tier conservation identities
	// close exactly instead of modulo in-flight state.
	cluster.Client.Stop()
	cluster.Sim.Run()
	h.checkFinal()

	h.report.Digest = h.digest.Sum64()
	return h.report, nil
}

// detectorConfig tunes passive detection for the harness's timescales:
// 2 ms ticks, sub-second backoffs, and half-open trials wide enough
// (half the hash share, 500 ms) that reopened connections actually land
// trial traffic on recovering backends before the liveness deadline.
func detectorConfig(sc Scenario) control.DetectorConfig {
	cfg := control.DetectorConfig{
		Enabled:          true,
		FailureThreshold: 3,
		OutlierFactor:    8,
		OutlierTicks:     10,
		MinPoolSamples:   4,
		// Starvation patience scales with the pool: with B backends and a
		// couple dozen closed-loop connections, a healthy minority-share
		// backend can legitimately hold zero flows for tens of
		// milliseconds, and the sim has no dial reports to disambiguate.
		StarvationTicks:  8 + 4*sc.Backends,
		BackoffInitial:   100 * time.Millisecond,
		BackoffMax:       300 * time.Millisecond,
		HalfOpenFraction: 0.5,
		HalfOpenTicks:    250,
		SlowStartInitial: 0.25,
		SlowStartTicks:   20,
		Seed:             sc.Seed,
	}
	if sc.Congestion {
		// Congestion channel: at 2 ms ticks a backend must show
		// concentrated distress every tick for 6 ms before the weight-down
		// latch and 12 ms before ejection — far quicker than the latency
		// outlier's OutlierTicks, which is the point, but demanding enough
		// consecutiveness that a lone RTO burst doesn't eject anyone. The
		// sim's RTO floor is 15 ms, so sustaining a hot streak takes
		// several connections retransmitting against one backend at once.
		cfg.CongestionPerTick = 1
		cfg.CongestionTicks = 3
	}
	return cfg
}

func stackConn(cur faults.ConnSchedule, add faults.ConnSchedule) faults.ConnSchedule {
	if cur == nil {
		return add
	}
	if st, ok := cur.(faults.ConnStack); ok {
		return append(st, add)
	}
	return faults.ConnStack{cur, add}
}

func stackSched(cur faults.Schedule, add faults.Schedule) faults.Schedule {
	if cur == nil {
		return add
	}
	if st, ok := cur.(faults.Stack); ok {
		return append(st, add)
	}
	return faults.Stack{cur, add}
}

// harness carries oracle state across ticks for one run.
type harness struct {
	sc      Scenario
	ctrl    *control.Controller
	cluster *testbed.Cluster
	// hasTable and weighted gate the snapshot and weight oracles: only
	// TableSource policies publish snapshots, and only Weighted policies
	// carry a weight vector to normalize.
	hasTable bool
	weighted bool
	report   *Report
	digest   interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}

	lastGen   uint64
	samples   [][]time.Duration // clean in-band samples per backend
	baselined bool
	baseNew   []uint64 // NewPerBack at CleanFrom
	baseResp  uint64   // client responses at CleanFrom

	// Health-state transition tracking for the liveness oracle: sampled
	// each check tick, so "stuck" means no transition across many ticks.
	lastState  []control.HealthState
	lastChange []time.Duration
}

func (h *harness) violate(oracle, format string, args ...any) {
	h.report.Total++
	if len(h.report.Violations) < maxRecordedViolations {
		h.report.Violations = append(h.report.Violations, Violation{
			At:     h.cluster.Sim.Now(),
			Oracle: oracle,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// fold mixes values into the trace digest.
func (h *harness) fold(vals ...uint64) {
	var buf [8]byte
	for _, v := range vals {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.digest.Write(buf[:])
	}
}

// checkTick runs the per-tick oracles and folds the observable state into
// the trace digest.
func (h *harness) checkTick() {
	now := h.cluster.Sim.Now()
	ls := h.cluster.LB.Stats()
	cs := h.cluster.Client.Stats()
	connCount := uint64(h.cluster.LB.ConnCount())
	outstanding := uint64(h.cluster.Client.Outstanding())

	// Conservation: every client→server packet the LB saw was forwarded
	// to exactly one backend or dropped for lack of one.
	var perBackend uint64
	for _, n := range ls.PerBackend {
		perBackend += n
	}
	if ls.Packets != perBackend+ls.NoBackend {
		h.violate("conservation-packets", "Packets=%d != sum(PerBackend)=%d + NoBackend=%d",
			ls.Packets, perBackend, ls.NoBackend)
	}
	// Conservation: every tracked flow is still open, closed, or swept.
	if ls.NewFlows != ls.Closed+ls.Swept+connCount {
		h.violate("conservation-flows", "NewFlows=%d != Closed=%d + Swept=%d + open=%d",
			ls.NewFlows, ls.Closed, ls.Swept, connCount)
	}
	// Conservation: every request the client sent is answered, abandoned,
	// or still outstanding — at every instant, not just at drain.
	if cs.Sent != cs.Responses+cs.Abandoned+outstanding {
		h.violate("conservation-client", "Sent=%d != Responses=%d + Abandoned=%d + Outstanding=%d",
			cs.Sent, cs.Responses, cs.Abandoned, outstanding)
	}
	// Conservation: the LB never detects more transport distress than the
	// client emitted. Each detection consumes at least one emitted signal
	// (a dup-ACK run needs four identical ACKs, a zero-window stall at
	// least one advertisement); detections may undercount — tracker cap,
	// state released at close — but can never invent events.
	if ls.Retrans > cs.Retransmits || ls.DupAcks > cs.DupAcks || ls.ZeroWins > cs.ZeroWindows {
		h.violate("conservation-congestion",
			"LB observed retrans=%d dupAcks=%d zeroWins=%d exceeding client-emitted %d/%d/%d",
			ls.Retrans, ls.DupAcks, ls.ZeroWins, cs.Retransmits, cs.DupAcks, cs.ZeroWindows)
	}

	// Snapshot sanity — only table-building policies publish snapshots;
	// mutex-path policies (p2c, wlc) have no snapshot to check, but their
	// admission state is still validated below via the controller.
	var weights []float64
	if h.hasTable {
		snap := h.ctrl.Snapshot()
		if snap == nil {
			h.violate("snapshot-sanity", "no published snapshot")
			return
		}
		gen := snap.Generation()
		if gen < h.lastGen {
			h.violate("snapshot-generation", "generation went backwards: %d -> %d", h.lastGen, gen)
		}
		h.lastGen = gen
		if h.weighted {
			weights = snap.Weights()
			if len(weights) != h.sc.Backends {
				h.violate("snapshot-weights", "weight vector has %d entries for %d backends",
					len(weights), h.sc.Backends)
			}
			var wsum float64
			for i, w := range weights {
				wsum += w
				if math.IsNaN(w) || math.IsInf(w, 0) || w < h.sc.MinWeight*(1-1e-9) || w > 1+1e-9 {
					h.violate("snapshot-weights", "weight[%d]=%v outside [MinWeight=%v, 1]", i, w, h.sc.MinWeight)
				}
			}
			if len(weights) > 0 && (wsum < 0.99 || wsum > 1.01) {
				h.violate("snapshot-weights", "weights not normalized: sum=%v", wsum)
			}
		}
	}
	admitted := 0
	for i := 0; i < h.sc.Backends; i++ {
		a := h.ctrl.Admission(i)
		if a < 0 || a > 1 {
			h.violate("snapshot-admission", "admission[%d]=%v outside [0,1]", i, a)
		}
		if a > 0 {
			admitted++
		}
	}
	if admitted == 0 {
		h.violate("snapshot-admission", "every backend ejected: the pool went unroutable")
	}

	// Post-fault baselines for the starvation and liveness oracles.
	if !h.baselined && now >= h.sc.CleanFrom {
		h.baselined = true
		h.baseNew = append([]uint64(nil), ls.NewPerBack...)
		h.baseResp = cs.Responses
	}

	// Trace digest: the complete per-tick observable state.
	h.fold(uint64(now), ls.Packets, ls.NewFlows, ls.Closed, ls.Swept,
		ls.Samples, ls.NoBackend, ls.Fallbacks, connCount,
		cs.Sent, cs.Responses, cs.Timeouts, cs.Aborts, cs.Opened,
		cs.Stale, cs.Abandoned, outstanding, h.ctrl.Generation(),
		ls.Retrans, ls.DupAcks, ls.ZeroWins,
		cs.Retransmits, cs.DupAcks, cs.ZeroWindows)
	for i := 0; i < h.sc.Backends; i++ {
		st := h.ctrl.HealthState(i)
		if st != h.lastState[i] {
			h.lastState[i] = st
			h.lastChange[i] = now
		}
		h.fold(ls.PerBackend[i], ls.NewPerBack[i], ls.SampPerBack[i],
			uint64(st), math.Float64bits(h.ctrl.Admission(i)))
		if ls.CongPerBack != nil {
			h.fold(ls.CongPerBack[i], h.ctrl.CongestionEjections(i))
		}
	}
	for _, w := range weights {
		h.fold(math.Float64bits(w))
	}
}

// checkFinal runs the end-of-run oracles after the drain: cross-tier
// conservation, estimator bounds, liveness, and starvation.
func (h *harness) checkFinal() {
	ls := h.cluster.LB.Stats()
	cs := h.cluster.Client.Stats()

	// Drain conservation: nothing may remain outstanding, and both the
	// client-side and cross-tier identities must close exactly.
	if out := h.cluster.Client.Outstanding(); out != 0 {
		h.violate("conservation-drain", "%d requests still outstanding after drain", out)
	}
	if cs.Sent != cs.Responses+cs.Abandoned {
		h.violate("conservation-drain", "Sent=%d != Responses=%d + Abandoned=%d",
			cs.Sent, cs.Responses, cs.Abandoned)
	}
	var served uint64
	for _, srv := range h.cluster.Servers {
		served += srv.Stats().Served
	}
	if served != cs.Responses+cs.Stale {
		h.violate("conservation-drain", "sum(Served)=%d != Responses=%d + Stale=%d",
			served, cs.Responses, cs.Stale)
	}

	// Estimator bounds: on clean stretches the in-band median per backend
	// must sit within a factor of the scenario's ground truth (one RTT +
	// service median + think time — the triggered-gap signal the LB sees).
	const factor = 8.0
	if h.sc.Workload.Pipeline == 1 {
		think := h.sc.Workload.ThinkTime + h.sc.Workload.ThinkJitter/2
		for b, samp := range h.samples {
			if len(samp) < 120 {
				continue // not enough clean traffic landed here to judge
			}
			truth := h.sc.ClientToLB + h.sc.LBToServer + h.sc.BaseDelay[b] +
				h.sc.ServerToClient + h.sc.ServiceMedian[b] + think
			med := median(samp)
			if float64(med) > factor*float64(truth) || float64(truth) > factor*float64(med) {
				h.violate("estimator-bounds",
					"backend %d in-band median %v vs ground truth %v exceeds factor %v (%d samples)",
					b, med, truth, factor, len(samp))
			}
		}
	}

	// Liveness: after the last fault plus the seed-derived margin, every
	// backend that received real post-recovery traffic must be Healthy,
	// and the pool as a whole must have made progress.
	snap := h.ctrl.Snapshot()
	var tailNew uint64
	tails := make([]uint64, h.sc.Backends)
	if h.baselined {
		for i := range tails {
			tails[i] = ls.NewPerBack[i] - h.baseNew[i]
			tailNew += tails[i]
		}
		if cs.Responses == h.baseResp {
			h.violate("liveness", "no responses at all after faults cleared at %v", h.sc.CleanFrom)
		}
	} else {
		h.violate("liveness", "run ended before the post-fault baseline at %v", h.sc.CleanFrom)
	}
	// A correctly wired state machine never dwells in one non-Healthy
	// state longer than its timer allows: Ejected ≤ jittered BackoffMax,
	// HalfOpen ≤ HalfOpenTicks, SlowStart ≤ SlowStartTicks. The stuck
	// threshold sits above the longest legitimate dwell, so it catches a
	// dead backoff timer, unbounded backoff growth, or a ramp that never
	// completes — while excusing a backend that is merely mid-cycle at the
	// deadline (an idle minority-share backend can be re-ejected for
	// sample starvation at any time; that is the detector working).
	const stuckThreshold = 800 * time.Millisecond
	var congEj uint64
	for i := 0; i < h.sc.Backends; i++ {
		st := h.ctrl.HealthState(i)
		h.report.Stats.Ejections += h.ctrl.Ejections(i)
		// Attribution: a congestion ejection must point at a backend the LB
		// actually attributed distress events to — the detector can never
		// claim congestion it was never fed.
		if ce := h.ctrl.CongestionEjections(i); ce > 0 {
			congEj += ce
			if len(ls.CongPerBack) <= i || ls.CongPerBack[i] == 0 {
				h.violate("congestion-attribution",
					"backend %d ejected %d times for congestion with zero attributed events", i, ce)
			}
		}
		if st != control.Healthy && h.baselined && tails[i] >= livenessEvidence {
			if dwell := h.sc.Duration - h.lastChange[i]; dwell >= stuckThreshold {
				h.violate("liveness",
					"backend %d stuck in %v for %v at the recovery deadline (%d post-fault flows)",
					i, st, dwell, tails[i])
			}
		}
		// Starvation: a backend the snapshot says should receive traffic
		// must actually receive it once enough post-fault flows arrived.
		if h.baselined && snap != nil {
			expected := float64(tailNew) * weightOf(snap, i) * snap.Admission(i)
			if expected >= 12 && tails[i] == 0 {
				h.violate("starvation",
					"backend %d (weight %.3f, admission %.2f) got 0 of %d post-fault flows",
					i, weightOf(snap, i), snap.Admission(i), tailNew)
			}
		}
	}

	h.report.Stats = RunStats{
		Sent:          cs.Sent,
		Responses:     cs.Responses,
		Timeouts:      cs.Timeouts,
		Aborts:        cs.Aborts,
		Stale:         cs.Stale,
		Abandoned:     cs.Abandoned,
		NewFlows:      ls.NewFlows,
		Fallbacks:     ls.Fallbacks,
		NoBackend:     ls.NoBackend,
		Ejections:     h.report.Stats.Ejections,
		Retransmits:   cs.Retransmits,
		DupAcks:       cs.DupAcks,
		ZeroWindows:   cs.ZeroWindows,
		CongObserved:  ls.Retrans + ls.DupAcks + ls.ZeroWins,
		CongEjections: congEj,
	}

	// Final digest fold: drained totals and per-server outcomes.
	h.fold(cs.Sent, cs.Responses, cs.Timeouts, cs.Aborts, cs.Stale,
		cs.Abandoned, ls.NewFlows, ls.Fallbacks, served, uint64(h.report.Total),
		cs.Retransmits, cs.DupAcks, cs.ZeroWindows,
		ls.Retrans, ls.DupAcks, ls.ZeroWins, congEj)
	for _, srv := range h.cluster.Servers {
		st := srv.Stats()
		h.fold(st.Served, st.Dropped, st.Refused, st.Blackholed)
	}
}

func weightOf(snap *control.Snapshot, i int) float64 {
	w := snap.Weights()
	if i < len(w) {
		return w[i]
	}
	return 0
}

func median(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

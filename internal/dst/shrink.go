package dst

import "time"

// ShrinkResult is a minimized counterexample: the smallest fault subset
// (and tightest windows) of the original scenario that still violates an
// oracle, plus the report of the final failing run.
type ShrinkResult struct {
	Scenario Scenario
	// Kept maps the surviving faults back to their indices in the original
	// schedule — the -dst.keep= argument of the repro line.
	Kept   []int
	Report *Report
	Runs   int
}

// maxShrinkRuns bounds the total re-executions a shrink may spend; the
// budget is generous for the ≤5-fault schedules Generate produces.
const maxShrinkRuns = 96

// Shrink minimizes sc's fault schedule against runner (which must be the
// same Run/RunMutated closure that produced the original failure). It
// applies delta debugging (ddmin) over the fault list — so the surviving
// set is 1-minimal: removing any single fault makes the violation vanish —
// then bisects each survivor's window. Returns nil when the unshrunk
// scenario does not fail under runner.
func Shrink(sc Scenario, runner func(Scenario) (*Report, error)) *ShrinkResult {
	res := &ShrinkResult{}
	fails := func(kept []int) *Report {
		if res.Runs >= maxShrinkRuns {
			return nil
		}
		res.Runs++
		cand := sc
		cand.Faults = make([]FaultSpec, len(kept))
		for i, k := range kept {
			cand.Faults[i] = sc.Faults[k]
		}
		cand.finalize()
		r, err := runner(cand)
		if err != nil || !r.Failed() {
			return nil
		}
		r.Scenario = cand
		return r
	}

	all := make([]int, len(sc.Faults))
	for i := range all {
		all[i] = i
	}
	base := fails(all)
	if base == nil {
		return nil
	}
	res.Kept, res.Report = all, base

	// ddmin over fault indices: try dropping ever-smaller chunks until the
	// set is 1-minimal.
	gran := 2
	for len(res.Kept) >= 2 {
		chunk := (len(res.Kept) + gran - 1) / gran
		reduced := false
		for start := 0; start < len(res.Kept); start += chunk {
			end := start + chunk
			if end > len(res.Kept) {
				end = len(res.Kept)
			}
			cand := append(append([]int(nil), res.Kept[:start]...), res.Kept[end:]...)
			if len(cand) == 0 {
				continue
			}
			if r := fails(cand); r != nil {
				res.Kept, res.Report = cand, r
				if gran > 2 {
					gran--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if gran >= len(res.Kept) {
				break
			}
			gran *= 2
			if gran > len(res.Kept) {
				gran = len(res.Kept)
			}
		}
	}

	// Can the violation survive with no faults at all? (A mutation that
	// does not actually depend on the schedule shrinks to the empty one.)
	if len(res.Kept) == 1 {
		if r := fails(nil); r != nil {
			res.Kept, res.Report = []int{}, r
		}
	}

	// Window bisection: tighten each surviving fault's [Start, End) while
	// the violation persists. Operates on a scratch copy of the schedule
	// so each accepted tightening feeds the next probe.
	tightened := make([]FaultSpec, len(res.Kept))
	for i, k := range res.Kept {
		tightened[i] = sc.Faults[k]
	}
	failsWith := func(fs []FaultSpec) *Report {
		if res.Runs >= maxShrinkRuns {
			return nil
		}
		res.Runs++
		cand := sc
		cand.Faults = append([]FaultSpec(nil), fs...)
		cand.finalize()
		r, err := runner(cand)
		if err != nil || !r.Failed() {
			return nil
		}
		r.Scenario = cand
		return r
	}
	for i := range tightened {
		for iter := 0; iter < 5; iter++ {
			f := tightened[i]
			span := f.End - f.Start
			if span <= 100*time.Millisecond {
				break
			}
			trial := tightened[i]
			trial.End = f.Start + span/2
			probe := append([]FaultSpec(nil), tightened...)
			probe[i] = trial
			if r := failsWith(probe); r != nil {
				tightened[i] = trial
				res.Report = r
				continue
			}
			trial = tightened[i]
			trial.Start = f.End - span/2
			probe = append([]FaultSpec(nil), tightened...)
			probe[i] = trial
			if r := failsWith(probe); r != nil {
				tightened[i] = trial
				res.Report = r
				continue
			}
			break
		}
	}

	final := sc
	final.Faults = tightened
	final.finalize()
	res.Scenario = final
	return res
}

module inbandlb

go 1.22

// Live end-to-end demo over real TCP sockets: two memcached servers, the
// userspace load balancer, and a memtier-like workload — the paper's Fig. 3
// scenario on your loopback interface.
//
// The run injects 2ms of per-request delay into server A halfway through.
// The latency-aware proxy, observing only client→server bytes, shifts new
// connections to server B; the client's p95 recovers within a second (the
// connection-reopen period dominates at this scale, not the controller).
//
//	go run ./examples/liveproxy
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/core"
	"inbandlb/internal/lbproxy"
	"inbandlb/internal/memcache"
	"inbandlb/internal/stats"
	"inbandlb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Two real memcached-protocol servers on ephemeral loopback ports.
	serverA := memcache.NewServer()
	serverB := memcache.NewServer()
	for _, s := range []*memcache.Server{serverA, serverB} {
		if err := s.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		go func(s *memcache.Server) { _ = s.Serve() }(s)
		defer s.Close()
	}
	addrA, addrB := serverA.Addr().String(), serverB.Addr().String()
	// Give both servers a realistic base service time. Raw loopback
	// responses (~50µs) sit below the estimator's smallest timeout rung
	// (δ₁ = 64µs), where whole connections merge into one batch and the
	// estimate degrades — the paper's technique targets the 100µs–1ms
	// regime (see EXPERIMENTS.md, "ladder floor").
	const baseDelay = 400 * time.Microsecond
	serverA.SetDelay(baseDelay)
	serverB.SetDelay(baseDelay)
	fmt.Printf("server A: %s\nserver B: %s (both ~%v base service time)\n", addrA, addrB, baseDelay)

	// The userspace LB with the paper's feedback controller.
	policy, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends: []string{"A", "B"},
		Alpha:    0.10,
		// Keep 10% of traffic on the drained server: with a 2% trickle it
		// goes sample-starved and stale, and staleness flip-flops the
		// "worst server" decision (the oscillation the paper's §5 Q4
		// flags). 10% keeps both servers continuously measured.
		MinWeight:       0.10,
		Cooldown:        5 * time.Millisecond,
		HysteresisRatio: 1.5, // loopback timing is noisy
		Latency: core.ServerLatencyConfig{
			HalfLife:  25 * time.Millisecond,
			Staleness: 3 * time.Second,
		},
	})
	if err != nil {
		return err
	}
	proxy, err := lbproxy.New(lbproxy.Config{
		Backends: []string{addrA, addrB},
		Policy:   policy,
	})
	if err != nil {
		return err
	}
	if err := proxy.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	go func() { _ = proxy.Serve() }()
	defer proxy.Close()
	fmt.Printf("lbproxy : %s (latency-aware, α=0.10)\n\n", proxy.Addr())

	const (
		duration = 12 * time.Second
		injectAt = 4 * time.Second
		clearAt  = 8 * time.Second
	)

	// Inject 2ms into server A mid-run, clear it later.
	go func() {
		time.Sleep(injectAt)
		serverA.SetDelay(baseDelay + 2*time.Millisecond)
		fmt.Println("           >>> injected 2ms per-request delay into server A")
		time.Sleep(clearAt - injectAt)
		serverA.SetDelay(baseDelay)
		fmt.Println("           >>> cleared server A's delay")
	}()

	// Periodic report of client p95 and the proxy's weights.
	var mu sync.Mutex
	win := stats.NewWindowedHistogram(10, 100*time.Millisecond)
	start := time.Now()
	stopReport := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-stopReport:
				return
			case <-t.C:
				now := time.Since(start)
				mu.Lock()
				p95 := win.Quantile(now, 0.95)
				n := win.Count(now)
				mu.Unlock()
				// Snapshot serializes with the proxy's sample consumer;
				// reading policy.Weights() directly would race it.
				w := proxy.Snapshot().Weights
				fmt.Printf("t=%4.0fs  p95=%-10v  weights A=%.2f B=%.2f  (%d reqs in window)\n",
					now.Seconds(), p95.Round(10*time.Microsecond), w[0], w[1], n)
			}
		}
	}()

	rep, err := workload.Run(context.Background(), workload.Config{
		Addr:            proxy.Addr().String(),
		Connections:     8,
		RequestsPerConn: 50,
		GetRatio:        0.5,
		Duration:        duration,
		Seed:            1,
		OnLatency: func(since time.Duration, get bool, lat time.Duration) {
			mu.Lock()
			win.Record(since, lat)
			mu.Unlock()
		},
	})
	close(stopReport)
	if err != nil {
		return err
	}

	// Quiesce the proxy before reading the policy directly: Close runs the
	// controller's final flush tick, after which no goroutine touches the
	// policy.
	_ = proxy.Close()
	st := proxy.Stats()
	fmt.Println("\n---")
	fmt.Println(rep.String())
	fmt.Printf("proxy: %d connections relayed, %d estimator samples, per-backend %v\n",
		st.Accepted, st.Samples, st.PerBackend)
	fmt.Printf("controller: %d table updates, final weights %.3v\n", policy.Updates(), policy.Weights())
	return nil
}

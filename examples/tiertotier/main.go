// Tier-to-tier load balancing with in-band feedback control, simulated.
//
// An application tier calls into a four-server cache tier through a load
// balancer under direct server return. Mid-run, one cache server starts
// suffering 800µs of scheduling interference. Watch the latency-aware LB
// detect it from request-direction timing alone and drain it — then watch
// it recover when the interference stops.
//
//	go run ./examples/tiertotier
package main

import (
	"fmt"
	"os"
	"time"

	"inbandlb/internal/control"
	"inbandlb/internal/faults"
	"inbandlb/internal/netsim"
	"inbandlb/internal/server"
	"inbandlb/internal/stats"
	"inbandlb/internal/tcpsim"
	"inbandlb/internal/testbed"
)

func main() {
	const (
		n        = 4
		duration = 12 * time.Second
		degrade  = 4 * time.Second // interference starts
		recover  = 8 * time.Second // interference stops
	)
	names := []string{"cache-0", "cache-1", "cache-2", "cache-3"}

	policy, err := control.NewLatencyAware(control.LatencyAwareConfig{
		Backends:        names,
		Alpha:           0.10,
		MinWeight:       0.02,
		Cooldown:        time.Millisecond,
		HysteresisRatio: 1.15,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	servers := make([]server.Config, n)
	schedules := make([]faults.Schedule, n)
	for i := range servers {
		servers[i] = server.Config{
			Name:    names[i],
			Workers: 8,
			Service: server.LogNormal{Median: 120 * time.Microsecond, Sigma: 0.3},
		}
		schedules[i] = faults.None
	}
	// cache-2 suffers interference during [degrade, recover).
	schedules[2] = faults.Step{Start: degrade, End: recover, Extra: 800 * time.Microsecond}

	cluster, err := testbed.NewCluster(testbed.ClusterConfig{
		Seed:                42,
		Policy:              policy,
		Servers:             servers,
		ServerPathSchedules: schedules,
		Workload: tcpsim.RequestConfig{
			Connections:     16,
			Pipeline:        1,
			RequestsPerConn: 100,
			ReopenDelay:     500 * time.Microsecond,
			ThinkTime:       50 * time.Microsecond,
			ThinkJitter:     50 * time.Microsecond,
			GetFraction:     0.5,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Sample the client's sliding-window p95 and cache-2's weight once a
	// second of simulated time.
	win := stats.NewWindowedHistogram(10, 100*time.Millisecond)
	cluster.Client.OnResponse = func(now time.Duration, op netsim.Op, lat time.Duration) {
		win.Record(now, lat)
	}
	fmt.Println("  sim_time   p95_latency   cache-2_weight   cache-2_ewma")
	cluster.Sim.Every(time.Second, time.Second, func() bool {
		now := cluster.Sim.Now()
		marker := ""
		if now == degrade {
			marker = "   <- interference starts on cache-2"
		}
		if now == recover {
			marker = "   <- interference ends"
		}
		fmt.Printf("  %6v   %11v   %14.3f   %12v%s\n",
			now, win.Quantile(now, 0.95).Round(time.Microsecond),
			policy.Weights()[2],
			policy.Latency().Latency(2).Round(time.Microsecond),
			marker)
		return now < duration
	})

	cluster.Run(duration)

	st := cluster.LB.Stats()
	fmt.Println()
	fmt.Printf("new flows per server: %v\n", st.NewPerBack)
	fmt.Printf("estimator samples:    %d over %d flows\n", st.Samples, st.NewFlows)
	fmt.Printf("controller updates:   %d table rebuilds\n", policy.Updates())
}

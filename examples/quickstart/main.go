// Quickstart: feed packet arrival timestamps to the in-band latency
// estimators and read back response-latency samples — no simulator, no
// sockets, just the core algorithms from the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"inbandlb/internal/core"
)

func main() {
	// Synthesize the arrival pattern a load balancer would observe from a
	// window-limited flow under direct server return: bursts of 4 packets
	// (~30µs apart, the client's NIC serialization), then silence for one
	// response latency. The estimator sees ONLY these timestamps.
	rng := rand.New(rand.NewSource(7))
	responseLatency := 500 * time.Microsecond

	fmt.Println("== Algorithm 1: FixedTimeout ==")
	for _, delta := range []time.Duration{8 * time.Microsecond, 128 * time.Microsecond, 2 * time.Millisecond} {
		ft := core.NewFixedTimeout(delta)
		samples := drive(ft.Observe, rng, responseLatency, 200)
		fmt.Printf("δ = %-8v -> %3d samples, median %v\n",
			delta, len(samples), median(samples))
	}
	fmt.Println()
	fmt.Println("A δ below the intra-burst gap floods with tiny samples; a δ above the")
	fmt.Println("response latency merges batches and reports almost nothing. Algorithm 2")
	fmt.Println("finds the right δ automatically by detecting the sample-count cliff:")
	fmt.Println()

	fmt.Println("== Algorithm 2: EnsembleTimeout ==")
	est := core.MustEnsemble(core.EnsembleConfig{}) // paper defaults: 64µs..4ms ladder, 64ms epochs
	samples := drive(est.Observe, rng, responseLatency, 2000)
	fmt.Printf("true response latency : %v\n", responseLatency)
	fmt.Printf("chosen timeout δ_m    : %v (after %d epochs)\n", est.CurrentTimeout(), est.Epochs())
	fmt.Printf("estimated latency     : median %v over %d samples\n", median(samples), len(samples))

	// The latency now doubles (e.g. the server starts getting preempted).
	fmt.Println()
	fmt.Println("-- server degrades: response latency jumps to 1.2ms --")
	samples = drive(est.Observe, rng, 1200*time.Microsecond, 2000)
	tail := samples[len(samples)/2:]
	fmt.Printf("chosen timeout δ_m    : %v\n", est.CurrentTimeout())
	fmt.Printf("estimated latency     : median %v (steady state)\n", median(tail))
}

// drive feeds nBatches bursts into observe and collects its samples.
// Timestamps resume from a package-level clock so consecutive calls form
// one continuous flow.
var clock time.Duration

func drive(observe func(time.Duration) (time.Duration, bool), rng *rand.Rand,
	latency time.Duration, nBatches int) []time.Duration {
	var out []time.Duration
	for b := 0; b < nBatches; b++ {
		for p := 0; p < 4; p++ {
			if s, ok := observe(clock); ok {
				out = append(out, s)
			}
			clock += 25*time.Microsecond + time.Duration(rng.Intn(10))*time.Microsecond
		}
		// The pause until the response re-opens the window.
		clock += latency - 100*time.Microsecond + time.Duration(rng.Intn(40))*time.Microsecond
	}
	return out
}

func median(s []time.Duration) time.Duration {
	if len(s) == 0 {
		return 0
	}
	c := append([]time.Duration(nil), s...)
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if c[j] < c[i] {
				c[i], c[j] = c[j], c[i]
			}
		}
	}
	return c[len(c)/2]
}
